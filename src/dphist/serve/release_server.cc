#include "dphist/serve/release_server.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <utility>

#include "dphist/algorithms/registry.h"
#include "dphist/obs/obs.h"
#include "dphist/query/sparse_query.h"
#include "dphist/random/rng.h"
#include "dphist/testing/failpoint.h"

namespace dphist {
namespace serve {

namespace {

obs::Counter& BatchCounter() {
  static obs::Counter& counter =
      obs::Registry::Global().GetCounter("serve/batches");
  return counter;
}

obs::Counter& BatchQueryCounter() {
  static obs::Counter& counter =
      obs::Registry::Global().GetCounter("serve/batch/queries");
  return counter;
}

obs::Counter& StaleBatchCounter() {
  static obs::Counter& counter =
      obs::Registry::Global().GetCounter("serve/batches_stale");
  return counter;
}

obs::Counter& RetryCounter() {
  static obs::Counter& counter =
      obs::Registry::Global().GetCounter("serve/retries");
  return counter;
}

obs::Counter& DeadlineCounter() {
  static obs::Counter& counter =
      obs::Registry::Global().GetCounter("serve/deadline_exceeded");
  return counter;
}

// The retryable class: transient infrastructure/publisher failures.
// Refusals (kResourceExhausted) are deterministic and handled by
// degradation; everything else is a caller or configuration error.
bool IsTransient(const Status& status) {
  return status.code() == StatusCode::kInternal;
}

std::chrono::nanoseconds NextBackoff(std::chrono::nanoseconds backoff,
                                     const RetryPolicy& retry) {
  const double multiplier = std::max(1.0, retry.backoff_multiplier);
  const auto grown = std::chrono::duration_cast<std::chrono::nanoseconds>(
      backoff * multiplier);
  return std::min(grown, retry.max_backoff);
}

}  // namespace

std::string RecoveryStats::ToString() const {
  return "recovered " + std::to_string(charges_replayed) + " charge(s), " +
         std::to_string(releases_replayed) + " release(s); " +
         std::to_string(refusals) + " refusal(s), " +
         std::to_string(skipped) + " skipped, " +
         std::to_string(truncated_bytes) + " torn byte(s) discarded";
}

ReleaseServer::Dataset::Dataset(TenantKey key, Histogram truth_in,
                                double total_epsilon, Journal* journal)
    : truth(std::move(truth_in)),
      fingerprint(FingerprintHistogram(truth)),
      ledger(std::move(key), total_epsilon, journal) {}

ReleaseServer::Dataset::Dataset(TenantKey key,
                                sparse::SparseHistogram sparse_in,
                                double total_epsilon, Journal* journal)
    : sparse_truth(std::move(sparse_in)),
      fingerprint(sparse::FingerprintSparseHistogram(*sparse_truth)),
      ledger(std::move(key), total_epsilon, journal) {}

ReleaseServer::ReleaseServer(ReleaseServerOptions options)
    : options_(options), cache_(ReleaseCacheOptions{options.cache_shards}) {}

ReleaseServer::ReleaseServer(Histogram truth, double total_epsilon,
                             ReleaseServerOptions options)
    : ReleaseServer(options) {
  // The single-tenant constructor cannot fail: the default namespace is
  // empty by construction.
  (void)AddDataset(DefaultTenantKey(), std::move(truth), total_epsilon);
}

Status ReleaseServer::AddDataset(const TenantKey& key, Histogram truth,
                                 double total_epsilon) {
  auto dataset = std::make_unique<Dataset>(key, std::move(truth),
                                           total_epsilon, options_.journal);
  std::unique_lock<std::shared_mutex> lock(datasets_mutex_);
  auto [it, inserted] = datasets_.try_emplace(key, std::move(dataset));
  (void)it;
  if (!inserted) {
    return Status::InvalidArgument("namespace '" + FormatTenantKey(key) +
                                   "' is already registered");
  }
  return Status::Ok();
}

Status ReleaseServer::AddSparseDataset(const TenantKey& key,
                                       sparse::SparseHistogram truth,
                                       double total_epsilon) {
  auto dataset = std::make_unique<Dataset>(key, std::move(truth),
                                           total_epsilon, options_.journal);
  std::unique_lock<std::shared_mutex> lock(datasets_mutex_);
  auto [it, inserted] = datasets_.try_emplace(key, std::move(dataset));
  (void)it;
  if (!inserted) {
    return Status::InvalidArgument("namespace '" + FormatTenantKey(key) +
                                   "' is already registered");
  }
  return Status::Ok();
}

Result<ReleaseServer::Dataset*> ReleaseServer::FindDataset(
    const TenantKey& key) const {
  std::shared_lock<std::shared_mutex> lock(datasets_mutex_);
  const auto it = datasets_.find(key);
  if (it != datasets_.end()) {
    return it->second.get();
  }
  // Typed isolation: the same dataset name under a DIFFERENT tenant is a
  // cross-tenant probe, not a missing dataset. Never re-route it.
  for (const auto& [registered, dataset] : datasets_) {
    (void)dataset;
    if (registered.dataset == key.dataset &&
        registered.tenant != key.tenant) {
      return Status::PermissionDenied(
          "tenant '" + key.tenant + "' does not own dataset '" +
          key.dataset + "' (registered under another tenant)");
    }
  }
  return Status::NotFound("no dataset '" + key.dataset +
                          "' registered for tenant '" + key.tenant + "'");
}

ReleaseServer::Dataset* ReleaseServer::DefaultDataset() const {
  std::shared_lock<std::shared_mutex> lock(datasets_mutex_);
  const auto it = datasets_.find(DefaultTenantKey());
  return it == datasets_.end() ? nullptr : it->second.get();
}

Result<std::shared_ptr<const CachedRelease>> ReleaseServer::GetRelease(
    const TenantKey& tenant_key, const ServeRequest& request) {
  DPHIST_ASSIGN_OR_RETURN(Dataset* dataset, FindDataset(tenant_key));
  ReleaseKey key{tenant_key.tenant,   tenant_key.dataset,
                 dataset->fingerprint, request.publisher,
                 request.epsilon,      request.seed};
  // The charge happens inside the cache's once-per-key publish slot:
  // racing cache misses for the same key coalesce onto a single ledger
  // charge and a single publication, so a popular release is paid for
  // exactly once no matter how many threads request it.
  if (dataset->is_sparse()) {
    return cache_.GetOrPublishSparse(
        key, [&]() -> Result<sparse::SparseHistogram> {
          auto publisher = PublisherRegistry::MakeSparse(request.publisher);
          if (!publisher.ok()) {
            return publisher.status();
          }
          DPHIST_RETURN_IF_ERROR(dataset->ledger.Charge(
              request.epsilon, request.publisher + ":seed=" +
                                   std::to_string(request.seed)));
          Rng rng(request.seed);
          Result<sparse::SparseHistogram> published =
              publisher.value()->Publish(*dataset->sparse_truth,
                                         request.epsilon, rng);
          if (!published.ok() || options_.journal == nullptr) {
            return published;
          }
          // Same durability-before-ack contract as the dense slot: the
          // released keys and values must be on disk before the cache
          // insert that acknowledges them.
          JournalRecord record;
          record.type = JournalRecord::Type::kPublishSparse;
          record.key = tenant_key;
          record.fingerprint = dataset->fingerprint;
          record.publisher = request.publisher;
          record.epsilon = request.epsilon;
          record.seed = request.seed;
          record.domain = published.value().domain_size();
          const auto& entries = published.value().entries();
          record.keys.reserve(entries.size());
          record.counts.reserve(entries.size());
          for (const sparse::SparseEntry& entry : entries) {
            record.keys.push_back(entry.key);
            record.counts.push_back(entry.count);
          }
          DPHIST_RETURN_IF_ERROR(options_.journal->Append(record));
          DPHIST_RETURN_IF_ERROR(options_.journal->Sync());
          return published;
        });
  }
  return cache_.GetOrPublish(key, [&]() -> Result<Histogram> {
    auto publisher = PublisherRegistry::Make(request.publisher);
    if (!publisher.ok()) {
      return publisher.status();
    }
    DPHIST_RETURN_IF_ERROR(dataset->ledger.Charge(
        request.epsilon, request.publisher + ":seed=" +
                             std::to_string(request.seed)));
    // A charge precedes its publication (never sample noise the budget
    // cannot cover); publish failures after a successful charge are
    // conservative — the epsilon stays spent.
    Rng rng(request.seed);
    Result<Histogram> published =
        publisher.value()->Publish(dataset->truth, request.epsilon, rng);
    if (!published.ok() || options_.journal == nullptr) {
      return published;
    }
    // Durability before acknowledgement: the publish record (with the
    // released counts) must be on disk before the cache insert that makes
    // this release visible. The explicit Sync pins the ack boundary even
    // under relaxed fsync policies; under kEveryRecord it is a no-op
    // second sync. On failure the epsilon stays spent and nothing is
    // released — the caller may retry into the same coalesced slot.
    JournalRecord record;
    record.type = JournalRecord::Type::kPublish;
    record.key = tenant_key;
    record.fingerprint = dataset->fingerprint;
    record.publisher = request.publisher;
    record.epsilon = request.epsilon;
    record.seed = request.seed;
    record.counts = published.value().counts();
    DPHIST_RETURN_IF_ERROR(options_.journal->Append(record));
    DPHIST_RETURN_IF_ERROR(options_.journal->Sync());
    return published;
  });
}

Result<std::shared_ptr<const CachedRelease>> ReleaseServer::GetRelease(
    const ServeRequest& request) {
  return GetRelease(DefaultTenantKey(), request);
}

Result<BatchAnswer> ReleaseServer::AnswerBatch(
    const TenantKey& tenant_key, const std::vector<RangeQuery>& queries,
    const ServeRequest& request) {
  DPHIST_ASSIGN_OR_RETURN(Dataset* dataset, FindDataset(tenant_key));
  if (dataset->is_sparse()) {
    DPHIST_RETURN_IF_ERROR(
        ValidateSparseQueries(queries, dataset->domain()));
  } else {
    DPHIST_RETURN_IF_ERROR(ValidateQueries(queries, dataset->truth.size()));
  }
  obs::ScopedTimer batch_timer("serve/batch");
  BatchCounter().Increment();
  BatchQueryCounter().Add(queries.size());
  // Chaos hook: whole-batch latency at the front door.
  DPHIST_FAILPOINT("serve/answer_batch");

  BatchAnswer batch;
  // Fast lane: one counting lookup. A sealed release needs none of the
  // retry/degradation machinery below — it is immutable, already paid
  // for, and lock-free to read.
  std::shared_ptr<const CachedRelease> release = cache_.LookupServing(
      {tenant_key.tenant, tenant_key.dataset, dataset->fingerprint,
       request.publisher, request.epsilon, request.seed});
  if (release != nullptr) {
    batch.cache_hit = true;
  } else {
    // Resolve the release with bounded retries on transient failure. The
    // deadline and every backoff sleep go through the injectable clock, so
    // the whole schedule is simulated time in tests — never a wall sleep.
    Clock& clock =
        options_.clock != nullptr ? *options_.clock : Clock::Real();
    const RetryPolicy& retry = options_.retry;
    const std::size_t max_attempts =
        std::max<std::size_t>(1, retry.max_attempts);
    const bool has_deadline =
        retry.deadline > std::chrono::nanoseconds::zero();
    const std::chrono::steady_clock::time_point deadline =
        has_deadline ? clock.Now() + retry.deadline
                     : std::chrono::steady_clock::time_point{};
    auto requested = GetRelease(tenant_key, request);
    std::chrono::nanoseconds backoff = retry.initial_backoff;
    for (std::size_t attempt = 1; !requested.ok() &&
                                  IsTransient(requested.status()) &&
                                  attempt < max_attempts;
         ++attempt) {
      if (has_deadline && clock.Now() + backoff > deadline) {
        // Sleeping the next backoff would overrun the batch budget: give
        // up now, typed, with the underlying error preserved.
        DeadlineCounter().Increment();
        return Status::DeadlineExceeded(
            "AnswerBatch gave up after " + std::to_string(attempt) +
            " attempt(s): retrying would exceed the batch deadline; last "
            "error: " +
            requested.status().ToString());
      }
      clock.SleepFor(backoff);
      backoff = NextBackoff(backoff, retry);
      RetryCounter().Increment();
      requested = GetRelease(tenant_key, request);
    }

    if (requested.ok()) {
      release = std::move(requested).value();
    } else if (requested.status().code() ==
               StatusCode::kResourceExhausted) {
      // Degrade instead of failing the batch: newest release of the same
      // publisher if any, else the newest release of any publisher —
      // always inside this namespace; degradation never crosses a tenant
      // boundary.
      release = cache_.NewestFor(tenant_key, request.publisher);
      if (release == nullptr) {
        release = cache_.NewestFor(tenant_key, "");
      }
      if (release == nullptr) {
        return requested.status();
      }
      batch.stale = true;
      StaleBatchCounter().Increment();
    } else {
      return requested.status();
    }
  }
  batch.served = release->key();
  AnswerInto(*release, queries, &batch.answers);
  return batch;
}

void ReleaseServer::AnswerInto(const CachedRelease& release,
                               const std::vector<RangeQuery>& queries,
                               std::vector<double>* answers) const {
  answers->resize(queries.size());
  auto answer_range = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      // Chaos hook: per-query latency (a slow shard, a page fault). Pure
      // delay — answers are unaffected by construction.
      DPHIST_FAILPOINT("serve/answer_query");
      (*answers)[i] = release.RangeSum(queries[i].begin, queries[i].end);
    }
  };
  ThreadPool& pool =
      options_.pool != nullptr ? *options_.pool : ThreadPool::Global();
  // Chaos hook: induced pool-dispatch failure. The contract is graceful
  // degradation, not batch failure — the fan-out falls back to inline
  // answering, so only latency changes, never the answers.
  if (pool.thread_count() > 1 &&
      queries.size() >= options_.min_parallel_batch &&
      !testing::FailpointFires("serve/pool_dispatch")) {
    pool.ParallelForChunks(0, queries.size(), /*min_chunk=*/64,
                           answer_range);
  } else {
    answer_range(0, queries.size());
  }
}

std::shared_ptr<const CachedRelease> ReleaseServer::TryGetCached(
    const TenantKey& tenant_key, const ServeRequest& request) const {
  auto dataset = FindDataset(tenant_key);
  if (!dataset.ok()) {
    return nullptr;
  }
  return cache_.LookupServing({tenant_key.tenant, tenant_key.dataset,
                               dataset.value()->fingerprint,
                               request.publisher, request.epsilon,
                               request.seed});
}

Result<bool> ReleaseServer::TryAnswerCached(
    const TenantKey& tenant_key, const std::vector<RangeQuery>& queries,
    const ServeRequest& request, BatchAnswer* out) {
  DPHIST_ASSIGN_OR_RETURN(Dataset* dataset, FindDataset(tenant_key));
  std::shared_ptr<const CachedRelease> release = cache_.Lookup(
      {tenant_key.tenant, tenant_key.dataset, dataset->fingerprint,
       request.publisher, request.epsilon, request.seed});
  if (release == nullptr) {
    // Not sealed yet: the caller takes the full AnswerBatch path, which
    // re-resolves and does its own hit/miss accounting — counting nothing
    // here keeps totals identical to a fast-lane-free server.
    return false;
  }
  // From here on this is the AnswerBatch cache-hit path verbatim —
  // validation, counters, and chaos hooks included — so answers, errors,
  // and observability are indistinguishable between the two lanes.
  if (dataset->is_sparse()) {
    DPHIST_RETURN_IF_ERROR(ValidateSparseQueries(queries, dataset->domain()));
  } else {
    DPHIST_RETURN_IF_ERROR(ValidateQueries(queries, dataset->truth.size()));
  }
  obs::ScopedTimer batch_timer("serve/batch");
  BatchCounter().Increment();
  BatchQueryCounter().Add(queries.size());
  DPHIST_FAILPOINT("serve/answer_batch");
  ReleaseCache::CountServingHit();
  out->stale = false;
  out->cache_hit = true;
  out->served = release->key();
  AnswerInto(*release, queries, &out->answers);
  return true;
}

Result<BatchAnswer> ReleaseServer::AnswerBatch(
    const std::vector<RangeQuery>& queries, const ServeRequest& request) {
  return AnswerBatch(DefaultTenantKey(), queries, request);
}

Result<RecoveryStats> ReleaseServer::Recover(const ReplayResult& replay) {
  RecoveryStats stats;
  stats.truncated_bytes = replay.truncated_bytes;
  for (const JournalRecord& record : replay.records) {
    auto dataset = FindDataset(record.key);
    if (!dataset.ok()) {
      // The namespace is gone (or moved tenants). The record stays in the
      // journal but is not applied; count it so operators notice.
      ++stats.skipped;
      continue;
    }
    switch (record.type) {
      case JournalRecord::Type::kCharge: {
        const Status status = dataset.value()->ledger.RestoreCharge(record);
        if (status.ok()) {
          ++stats.charges_replayed;
        } else if (status.code() == StatusCode::kResourceExhausted) {
          // The grant shrank across the restart; the accountant refuses
          // the excess. Remaining budget stays >= 0 — the no-overspend
          // direction — but the refusal is worth surfacing.
          ++stats.refusals;
        } else {
          return status;
        }
        break;
      }
      case JournalRecord::Type::kPublish: {
        if (record.fingerprint != dataset.value()->fingerprint) {
          // The registered truth changed since this release was journaled;
          // its answers describe data the server no longer holds.
          ++stats.skipped;
          break;
        }
        ReleaseKey key{record.key.tenant, record.key.dataset,
                       record.fingerprint, record.publisher,
                       record.epsilon,     record.seed};
        cache_.RestorePublished(key, Histogram(record.counts));
        ++stats.releases_replayed;
        break;
      }
      case JournalRecord::Type::kPublishSparse: {
        if (record.fingerprint != dataset.value()->fingerprint) {
          ++stats.skipped;
          break;
        }
        std::vector<sparse::SparseEntry> entries;
        const std::size_t count =
            std::min(record.keys.size(), record.counts.size());
        entries.reserve(count);
        for (std::size_t i = 0; i < count; ++i) {
          entries.push_back({record.keys[i], record.counts[i]});
        }
        auto restored =
            sparse::SparseHistogram::Create(record.domain, std::move(entries));
        if (!restored.ok()) {
          // A CRC-valid frame whose body violates the sparse invariants
          // (out-of-domain or unsorted keys) cannot be replayed; skip it
          // rather than fail the whole recovery.
          ++stats.skipped;
          break;
        }
        ReleaseKey key{record.key.tenant, record.key.dataset,
                       record.fingerprint, record.publisher,
                       record.epsilon,     record.seed};
        cache_.RestorePublishedSparse(key, std::move(restored).value());
        ++stats.releases_replayed;
        break;
      }
    }
  }
  return stats;
}

std::size_t ReleaseServer::dataset_count() const {
  std::shared_lock<std::shared_mutex> lock(datasets_mutex_);
  return datasets_.size();
}

Result<const BudgetLedger*> ReleaseServer::LedgerFor(
    const TenantKey& key) const {
  DPHIST_ASSIGN_OR_RETURN(Dataset* dataset, FindDataset(key));
  return static_cast<const BudgetLedger*>(&dataset->ledger);
}

std::uint64_t ReleaseServer::fingerprint() const {
  const Dataset* dataset = DefaultDataset();
  return dataset == nullptr ? 0 : dataset->fingerprint;
}

std::size_t ReleaseServer::domain_size() const {
  const Dataset* dataset = DefaultDataset();
  return dataset == nullptr ? 0
                            : static_cast<std::size_t>(dataset->domain());
}

const BudgetLedger& ReleaseServer::ledger() const {
  return DefaultDataset()->ledger;
}

}  // namespace serve
}  // namespace dphist
