#include "dphist/serve/release_server.h"

#include <string>
#include <utility>

#include "dphist/algorithms/registry.h"
#include "dphist/obs/obs.h"
#include "dphist/random/rng.h"

namespace dphist {
namespace serve {

namespace {

obs::Counter& BatchCounter() {
  static obs::Counter& counter =
      obs::Registry::Global().GetCounter("serve/batches");
  return counter;
}

obs::Counter& BatchQueryCounter() {
  static obs::Counter& counter =
      obs::Registry::Global().GetCounter("serve/batch/queries");
  return counter;
}

obs::Counter& StaleBatchCounter() {
  static obs::Counter& counter =
      obs::Registry::Global().GetCounter("serve/batches_stale");
  return counter;
}

}  // namespace

ReleaseServer::ReleaseServer(Histogram truth, double total_epsilon,
                             ReleaseServerOptions options)
    : truth_(std::move(truth)),
      fingerprint_(FingerprintHistogram(truth_)),
      ledger_(total_epsilon),
      options_(options) {}

Result<std::shared_ptr<const CachedRelease>> ReleaseServer::GetRelease(
    const ServeRequest& request) {
  ReleaseKey key{fingerprint_, request.publisher, request.epsilon,
                 request.seed};
  // The charge happens inside the cache's once-per-key publish slot:
  // racing cache misses for the same key coalesce onto a single ledger
  // charge and a single publication, so a popular release is paid for
  // exactly once no matter how many threads request it.
  return cache_.GetOrPublish(key, [&]() -> Result<Histogram> {
    auto publisher = PublisherRegistry::Make(request.publisher);
    if (!publisher.ok()) {
      return publisher.status();
    }
    DPHIST_RETURN_IF_ERROR(ledger_.Charge(
        request.epsilon, request.publisher + ":seed=" +
                             std::to_string(request.seed)));
    // A charge precedes its publication (never sample noise the budget
    // cannot cover); publish failures after a successful charge are
    // conservative — the epsilon stays spent.
    Rng rng(request.seed);
    return publisher.value()->Publish(truth_, request.epsilon, rng);
  });
}

Result<BatchAnswer> ReleaseServer::AnswerBatch(
    const std::vector<RangeQuery>& queries, const ServeRequest& request) {
  DPHIST_RETURN_IF_ERROR(ValidateQueries(queries, truth_.size()));
  obs::ScopedTimer batch_timer("serve/batch");
  BatchCounter().Increment();
  BatchQueryCounter().Add(queries.size());

  BatchAnswer batch;
  std::shared_ptr<const CachedRelease> release;
  const bool was_cached =
      cache_.Lookup({fingerprint_, request.publisher, request.epsilon,
                     request.seed}) != nullptr;
  auto requested = GetRelease(request);
  if (requested.ok()) {
    release = std::move(requested).value();
    batch.cache_hit = was_cached;
  } else if (requested.status().code() == StatusCode::kResourceExhausted) {
    // Degrade instead of failing the batch: newest release of the same
    // publisher if any, else the newest release of any publisher. The
    // answers are stale (older epsilon/seed) but cost no extra privacy.
    release = cache_.NewestFor(fingerprint_, request.publisher);
    if (release == nullptr) {
      release = cache_.NewestFor(fingerprint_, "");
    }
    if (release == nullptr) {
      return requested.status();
    }
    batch.stale = true;
    StaleBatchCounter().Increment();
  } else {
    return requested.status();
  }
  batch.served = release->key();

  batch.answers.resize(queries.size());
  auto answer_range = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      batch.answers[i] = release->RangeSum(queries[i].begin, queries[i].end);
    }
  };
  ThreadPool& pool =
      options_.pool != nullptr ? *options_.pool : ThreadPool::Global();
  if (pool.thread_count() > 1 &&
      queries.size() >= options_.min_parallel_batch) {
    pool.ParallelForChunks(0, queries.size(), /*min_chunk=*/64, answer_range);
  } else {
    answer_range(0, queries.size());
  }
  return batch;
}

}  // namespace serve
}  // namespace dphist
