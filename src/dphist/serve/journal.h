#ifndef DPHIST_SERVE_JOURNAL_H_
#define DPHIST_SERVE_JOURNAL_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "dphist/common/clock.h"
#include "dphist/common/result.h"
#include "dphist/common/status.h"
#include "dphist/serve/tenant.h"

namespace dphist {
namespace serve {

/// \brief Write-ahead event journal for the release store.
///
/// The journal is what survives a crash: every accepted budget charge is
/// appended at the ledger's commit point, and every successful publication
/// is appended (with the released counts) before the client is
/// acknowledged. Replay-on-startup reconstructs ledger spend and cache
/// contents from the record stream, so a restarted server can never
/// re-spend epsilon that already bought a release — the durability half of
/// the ε-DP guarantee.
///
/// On-disk format (all integers little-endian):
///
///   file   := magic record*
///   magic  := "DPHJNL1\n"                                (8 bytes)
///   record := payload_len:u32 crc32:u32 payload
///   payload:= type:u8 body
///
/// `crc32` is the IEEE CRC-32 of the payload bytes. A record is valid only
/// when its full frame fits in the file AND the CRC matches; replay stops
/// at the first invalid frame and reports everything before it — a torn
/// or bit-flipped tail truncates, never crashes, and never invents a
/// charge. A file whose magic is damaged is rejected with a typed
/// kDataLoss instead (nothing can be salvaged without the header).
///
/// Bodies (strings are len:u32 + bytes, doubles are raw IEEE-754 bits):
///   kCharge        := tenant dataset epsilon:f64 parallel:u8 group label
///   kPublish       := tenant dataset fingerprint:u64 publisher epsilon:f64
///                     seed:u64 bins:u64 counts:f64*bins
///   kPublishSparse := tenant dataset fingerprint:u64 publisher epsilon:f64
///                     seed:u64 domain:u64 entries:u64
///                     (key:u64 count:f64)*entries
///
/// Failpoints (chaos suite): `serve/journal/append` before a frame is
/// handed to the sink, `serve/journal/sync` before fsync, and
/// `serve/journal/replay_record` per replayed record.
///
/// Obs: `serve/journal/records` / `serve/journal/bytes` count appended
/// frames, `serve/journal/replayed_records` / `serve/journal/truncated_bytes`
/// describe recovery, and replay wall time lands in the
/// `serve/journal/replay` distribution.

/// One journal event.
struct JournalRecord {
  enum class Type : std::uint8_t {
    /// A budget charge the ledger accepted (its commit point).
    kCharge = 1,
    /// A successful publication, carrying the released counts.
    kPublish = 2,
    /// A successful sparse publication: released keys + counts over a
    /// 64-bit domain.
    kPublishSparse = 3,
  };

  Type type = Type::kCharge;
  /// Namespace the event belongs to.
  TenantKey key;

  // kCharge fields.
  double epsilon = 0.0;
  bool parallel = false;
  std::string group;
  std::string label;

  // kPublish fields (epsilon above doubles as the release epsilon).
  std::uint64_t fingerprint = 0;
  std::string publisher;
  std::uint64_t seed = 0;
  std::vector<double> counts;

  // kPublishSparse fields (fingerprint/publisher/seed above are shared;
  // `counts` holds the released values, parallel to `keys`).
  std::uint64_t domain = 0;
  std::vector<std::uint64_t> keys;

  friend bool operator==(const JournalRecord&, const JournalRecord&) = default;
};

/// The 8-byte file magic ("DPHJNL1\n").
std::string_view JournalMagic();

/// Encodes one record as a complete frame (length prefix + CRC + payload).
std::string EncodeJournalRecord(const JournalRecord& record);

/// \brief What replay recovered from a byte stream.
struct ReplayResult {
  /// Every record whose full frame was present and CRC-valid, in order.
  std::vector<JournalRecord> records;
  /// Bytes consumed by the magic plus the valid frames.
  std::uint64_t valid_bytes = 0;
  /// Bytes discarded past the last valid frame (the torn/corrupt tail).
  std::uint64_t truncated_bytes = 0;

  bool truncated() const { return truncated_bytes > 0; }
};

/// Replays an in-memory byte stream (magic + frames). Tolerates any torn
/// or corrupted tail by truncating at the last valid record; only a
/// missing/damaged magic is a typed kDataLoss error. An empty input
/// replays to zero records (a journal that was never created).
Result<ReplayResult> ReplayJournalBytes(std::string_view bytes);

/// Replays the journal file at `path`. A nonexistent file replays to zero
/// records; read failures are kInternal; corrupt magic is kDataLoss.
Result<ReplayResult> ReplayJournalFile(const std::string& path);

/// \brief Byte sink the journal writes through — the filesystem seam.
/// Production uses an O_APPEND file descriptor; tests inject sinks that
/// drop bytes mid-frame (torn writes) or fail on command.
class JournalSink {
 public:
  virtual ~JournalSink() = default;
  /// Appends `size` bytes; all-or-nothing at the Status level (a partial
  /// physical write may still land on disk — that is exactly the torn
  /// tail replay tolerates).
  virtual Status Append(const void* data, std::size_t size) = 0;
  /// Forces appended bytes to durable storage (fsync).
  virtual Status Sync() = 0;
};

/// When the journal fsyncs.
enum class FsyncPolicy {
  /// Sync after every appended record: strongest durability, one fsync per
  /// charge/publish. The default — budget spend must not outlive a crash.
  kEveryRecord,
  /// Sync when at least `fsync_interval` has elapsed on the journal clock
  /// since the last sync. Bounds data loss by time instead of by record.
  kInterval,
  /// Never sync implicitly; the OS decides (and `Journal::Sync` is manual).
  kNever,
};

struct JournalOptions {
  FsyncPolicy fsync_policy = FsyncPolicy::kEveryRecord;
  /// Minimum spacing between implicit syncs under kInterval.
  std::chrono::nanoseconds fsync_interval = std::chrono::milliseconds(50);
  /// Time source for kInterval decisions; nullptr means Clock::Real().
  Clock* clock = nullptr;
};

/// \brief Append handle to one journal file. Thread-safe: appends are
/// serialized internally (callers are the ledger and the cache publish
/// slot, which may race).
class Journal {
 public:
  /// Opens `path` for appending, creating it (with magic) if absent. An
  /// existing file is validated first and truncated to its last valid
  /// record, so new frames never land after a torn tail.
  static Result<std::unique_ptr<Journal>> Open(const std::string& path,
                                               JournalOptions options = {});

  /// Wraps an injected sink (tests). The sink receives the magic
  /// immediately when `write_magic` is true.
  static Result<std::unique_ptr<Journal>> WithSink(
      std::unique_ptr<JournalSink> sink, JournalOptions options = {},
      bool write_magic = true);

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;
  ~Journal();

  /// Appends one record and applies the fsync policy. On any error the
  /// record must be treated as NOT durable (the caller's ack must not
  /// happen); the file may hold a torn frame, which the next replay
  /// truncates.
  Status Append(const JournalRecord& record);

  /// Forces a sync now (used before acknowledging under kNever/kInterval).
  Status Sync();

  /// Bytes successfully handed to the sink (magic + frames) over this
  /// handle's lifetime plus any pre-existing valid bytes.
  std::uint64_t bytes_written() const;

  /// Records appended through this handle.
  std::uint64_t records_written() const;

  const std::string& path() const { return path_; }

 private:
  Journal(std::unique_ptr<JournalSink> sink, JournalOptions options,
          std::string path, std::uint64_t preexisting_bytes);

  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::string path_;
};

/// The journal directory named by DPHIST_JOURNAL_DIR, or nullopt when
/// unset — how `dphist_tool serve` (and any embedder) finds its default
/// durable location.
std::optional<std::string> JournalDirFromEnv();

}  // namespace serve
}  // namespace dphist

#endif  // DPHIST_SERVE_JOURNAL_H_
