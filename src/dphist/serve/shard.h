#ifndef DPHIST_SERVE_SHARD_H_
#define DPHIST_SERVE_SHARD_H_

#include <cstddef>

#include "dphist/common/env.h"
#include "dphist/serve/tenant.h"

namespace dphist {
namespace serve {

/// Shard count used when neither the caller nor DPHIST_SERVE_SHARDS picks
/// one. Small enough that a single-tenant test store is not wasteful,
/// large enough that a handful of hot tenants stop serializing on one
/// mutex.
inline constexpr std::size_t kDefaultServeShards = 8;

/// Resolves a shard count: an explicit `requested` wins, else the
/// DPHIST_SERVE_SHARDS environment variable, else `kDefaultServeShards`.
/// Never returns 0.
inline std::size_t ResolveShardCount(std::size_t requested) {
  if (requested > 0) {
    return requested;
  }
  if (const auto env = GetEnvPositiveInt("DPHIST_SERVE_SHARDS")) {
    return *env;
  }
  return kDefaultServeShards;
}

/// \brief The shard map: a pure function from tenant x dataset to a shard
/// index in [0, shard_count).
///
/// The count is fixed at construction, so routing a key to its shard needs
/// no lock — the "lock-free shard lookup" half of the sharded cache's
/// concurrency story (the per-shard mutex is taken only after routing).
/// The whole tenant x dataset namespace lands on one shard on purpose:
/// scans that must see a namespace consistently (the degraded-serving
/// "newest release" walk) then lock exactly one shard.
class ShardMap {
 public:
  /// `requested` = 0 defers to DPHIST_SERVE_SHARDS / the default.
  explicit ShardMap(std::size_t requested = 0)
      : count_(ResolveShardCount(requested)) {}

  std::size_t count() const { return count_; }

  std::size_t IndexFor(const TenantKey& key) const {
    return static_cast<std::size_t>(HashTenantKey(key)) % count_;
  }

  std::size_t IndexFor(std::string_view tenant, std::string_view dataset)
      const {
    return static_cast<std::size_t>(HashTenantKey(tenant, dataset)) % count_;
  }

 private:
  std::size_t count_;
};

}  // namespace serve
}  // namespace dphist

#endif  // DPHIST_SERVE_SHARD_H_
