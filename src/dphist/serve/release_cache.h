#ifndef DPHIST_SERVE_RELEASE_CACHE_H_
#define DPHIST_SERVE_RELEASE_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "dphist/common/result.h"
#include "dphist/common/status.h"
#include "dphist/hist/histogram.h"

namespace dphist {
namespace serve {

/// 64-bit FNV-1a fingerprint of a histogram's exact bit pattern (size and
/// every count's double bits). Two histograms share a fingerprint iff they
/// are bit-identical, which is the right identity for a release cache: the
/// same truth published by the same publisher at the same (epsilon, seed)
/// is the same deterministic release.
std::uint64_t FingerprintHistogram(const Histogram& histogram);

/// \brief Identity of one published release: which data, which algorithm,
/// at what budget, with which noise stream. Publishers are deterministic
/// functions of (histogram, epsilon, rng seed), so equal keys imply
/// bit-identical releases — the invariant that makes caching sound (a
/// cache hit re-serves the *same* release, costing zero extra privacy).
struct ReleaseKey {
  std::uint64_t dataset_fingerprint = 0;
  std::string publisher;
  double epsilon = 0.0;
  std::uint64_t seed = 0;

  friend bool operator==(const ReleaseKey&, const ReleaseKey&) = default;
};

/// Strict weak order over ReleaseKey for map storage (field-wise
/// lexicographic; epsilon compared as a double, which is exact for the
/// cache's purposes — keys come from caller-supplied values, not derived
/// arithmetic).
struct ReleaseKeyLess {
  bool operator()(const ReleaseKey& a, const ReleaseKey& b) const;
};

/// \brief An immutable published histogram plus its precomputed prefix-sum
/// array, so any range query on a cached release is O(1) with no lazy
/// state — safe to share across serving threads with no synchronization.
class CachedRelease {
 public:
  /// Builds the prefix table eagerly (Kahan-compensated, same as the
  /// Histogram-internal one).
  CachedRelease(ReleaseKey key, Histogram histogram);

  const ReleaseKey& key() const { return key_; }
  const Histogram& histogram() const { return histogram_; }

  /// Domain size in unit bins.
  std::size_t size() const { return histogram_.size(); }

  /// Sum of released counts in [begin, end); O(1). Requires
  /// begin <= end <= size() (validated by the serving front-end).
  double RangeSum(std::size_t begin, std::size_t end) const {
    return prefix_[end] - prefix_[begin];
  }

  /// Monotone insertion index within the owning cache (0 for a release
  /// constructed outside one); newer releases have larger sequences —
  /// what the degraded "serve newest cached" path orders by.
  std::uint64_t sequence() const { return sequence_; }

 private:
  friend class ReleaseCache;

  ReleaseKey key_;
  Histogram histogram_;
  std::vector<double> prefix_;  // prefix_[i] = sum of counts [0, i)
  std::uint64_t sequence_ = 0;
};

/// \brief Thread-safe memo of published releases keyed by ReleaseKey.
///
/// Concurrency contract: for any key, the publish callback passed to
/// `GetOrPublish` runs **at most once concurrently and exactly once
/// successfully** — racing callers coalesce onto one publication (a
/// per-key mutex serializes them; losers return the winner's release
/// without invoking their own callback). A failed publish caches nothing,
/// so a later call may retry. Lookups never block behind an in-flight
/// publication of a different key.
///
/// Obs (recorded only while obs is enabled): `serve/cache/hits`,
/// `serve/cache/misses` (a miss is counted once per publish attempt, not
/// per coalesced waiter), `serve/cache/entries` tracks insertions.
class ReleaseCache {
 public:
  using PublishFn = std::function<Result<Histogram>()>;

  ReleaseCache() = default;
  ReleaseCache(const ReleaseCache&) = delete;
  ReleaseCache& operator=(const ReleaseCache&) = delete;

  /// Returns the cached release for `key`, publishing it via `publish` on
  /// first use. Propagates the callback's error status (e.g. a
  /// ResourceExhausted budget refusal) without caching anything.
  Result<std::shared_ptr<const CachedRelease>> GetOrPublish(
      const ReleaseKey& key, const PublishFn& publish);

  /// The cached release for `key`, or null when absent. Never publishes.
  std::shared_ptr<const CachedRelease> Lookup(const ReleaseKey& key) const;

  /// The most recently published release for (fingerprint, publisher)
  /// across all (epsilon, seed) keys, or null when none exists — the
  /// degraded-serving fallback after a budget refusal. An empty
  /// `publisher` matches any publisher.
  std::shared_ptr<const CachedRelease> NewestFor(
      std::uint64_t dataset_fingerprint, std::string_view publisher) const;

  /// Number of successfully published (ready) releases.
  std::size_t size() const;

 private:
  struct Entry {
    /// Serializes publish attempts for this key; never held while the
    /// cache-wide mutex is held.
    std::mutex publish_mutex;
    /// The ready release; guarded by the cache-wide mutex_, null until a
    /// publish succeeded.
    std::shared_ptr<const CachedRelease> release;
  };

  mutable std::mutex mutex_;
  std::map<ReleaseKey, std::shared_ptr<Entry>, ReleaseKeyLess> entries_;
  std::uint64_t next_sequence_ = 1;
};

}  // namespace serve
}  // namespace dphist

#endif  // DPHIST_SERVE_RELEASE_CACHE_H_
