#ifndef DPHIST_SERVE_RELEASE_CACHE_H_
#define DPHIST_SERVE_RELEASE_CACHE_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "dphist/common/result.h"
#include "dphist/common/status.h"
#include "dphist/hist/histogram.h"
#include "dphist/serve/shard.h"
#include "dphist/serve/tenant.h"
#include "dphist/sparse/sparse_histogram.h"

namespace dphist {
namespace serve {

/// 64-bit FNV-1a fingerprint of a histogram's exact bit pattern (size and
/// every count's double bits). Two histograms share a fingerprint iff they
/// are bit-identical, which is the right identity for a release cache: the
/// same truth published by the same publisher at the same (epsilon, seed)
/// is the same deterministic release.
std::uint64_t FingerprintHistogram(const Histogram& histogram);

/// \brief Identity of one published release: which tenant's dataset, which
/// algorithm, at what budget, with which noise stream. Publishers are
/// deterministic functions of (histogram, epsilon, rng seed), so equal
/// keys imply bit-identical releases — the invariant that makes caching
/// sound (a cache hit re-serves the *same* release, costing zero extra
/// privacy).
///
/// The tenant and dataset names are part of the key on purpose: the
/// fingerprint identifies the *data*, but two tenants may serve identical
/// data, and caching (or worse, the degraded "newest release" fallback)
/// across that boundary would hand one tenant a release the other paid
/// for. Keys never match across namespaces.
struct ReleaseKey {
  std::string tenant;
  std::string dataset;
  std::uint64_t dataset_fingerprint = 0;
  std::string publisher;
  double epsilon = 0.0;
  std::uint64_t seed = 0;

  TenantKey tenant_key() const { return {tenant, dataset}; }

  friend bool operator==(const ReleaseKey&, const ReleaseKey&) = default;
};

/// Strict weak order over ReleaseKey for map storage (field-wise
/// lexicographic, cheap fingerprint first; epsilon compared as a double,
/// which is exact for the cache's purposes — keys come from
/// caller-supplied values, not derived arithmetic).
struct ReleaseKeyLess {
  bool operator()(const ReleaseKey& a, const ReleaseKey& b) const;
};

/// \brief An immutable sealed snapshot of one published release: the
/// histogram with its prefix-sum table sealed at construction (so any
/// range query is O(1) with no lazy state), plus lazily-filled
/// pre-encoded response frames per wire codec. Handed to readers as
/// `shared_ptr<const SealedRelease>` snapshots, so the serve path never
/// touches a shard mutex after the initial lookup and never re-encodes a
/// hot release — safe to share across serving threads with no external
/// synchronization.
class SealedRelease {
 public:
  /// Index of a pre-encoded response frame; one slot per wire codec.
  enum class FrameCodec : std::size_t { kBinary = 0, kJson = 1 };
  static constexpr std::size_t kFrameCodecs = 2;

  /// Seals the histogram's prefix table eagerly (Kahan-compensated), so
  /// every reader takes the lock-free fast path.
  SealedRelease(ReleaseKey key, Histogram histogram);

  /// A sparse release: the SparseHistogram carries its own prefix table,
  /// so range sums are O(log released-keys) instead of O(1).
  SealedRelease(ReleaseKey key, sparse::SparseHistogram sparse);

  const ReleaseKey& key() const { return key_; }

  /// The dense released histogram; empty for a sparse release (check
  /// `is_sparse()` first).
  const Histogram& histogram() const { return histogram_; }

  /// True when this release is sparse (constructed from a
  /// SparseHistogram).
  bool is_sparse() const { return sparse_.domain_size() != 0; }

  /// The sparse released histogram; a zero-domain placeholder for dense
  /// releases.
  const sparse::SparseHistogram& sparse_histogram() const { return sparse_; }

  /// Domain size in unit bins (the sparse domain for sparse releases).
  std::size_t size() const {
    return is_sparse() ? static_cast<std::size_t>(sparse_.domain_size())
                       : histogram_.size();
  }

  /// Sum of released counts in [begin, end); O(1) dense, O(log k) sparse.
  /// Requires begin <= end <= size() (validated by the serving front-end).
  double RangeSum(std::size_t begin, std::size_t end) const {
    if (is_sparse()) {
      return sparse_.RangeSumUnchecked(begin, end);
    }
    return histogram_.RangeSumUnchecked(begin, end);
  }

  /// Monotone insertion index within the owning cache (0 for a release
  /// constructed outside one); newer releases have larger sequences —
  /// what the degraded "serve newest cached" path orders by.
  std::uint64_t sequence() const { return sequence_; }

  /// The pre-encoded response frame for `codec`, encoding it via `encode`
  /// on first use (once-init: concurrent first callers serialize on an
  /// internal mutex, exactly one encodes, everyone shares the result).
  /// The returned string is immutable and outlives the release through
  /// the shared_ptr — the zero-copy payload the net layer writes straight
  /// to the socket. The encoder callback keeps the wire codecs out of the
  /// serve layer (net/ supplies them), and the frame is keyed to this
  /// sealed snapshot, so invalidation is structural: a republished or
  /// recovered release is a *new* SealedRelease with empty frame slots —
  /// a stale frame cannot survive its release.
  ///
  /// Obs: `serve/frame_cache_hits` on a filled slot,
  /// `serve/frame_cache_misses` when this call encodes.
  std::shared_ptr<const std::string> EncodedFrame(
      FrameCodec codec,
      const std::function<std::string()>& encode) const;

 private:
  friend class ReleaseCache;

  struct FrameSlot {
    std::atomic<bool> ready{false};
    std::shared_ptr<const std::string> frame;
  };

  ReleaseKey key_;
  Histogram histogram_;
  sparse::SparseHistogram sparse_;
  std::uint64_t sequence_ = 0;
  /// Per-codec encoded-frame memo; `ready` is the acquire/release
  /// publication flag for `frame`, which is written once under
  /// `frame_mutex_`.
  mutable std::array<FrameSlot, kFrameCodecs> frames_;
  mutable std::mutex frame_mutex_;
};

/// Pre-rename alias; new code should say SealedRelease.
using CachedRelease = SealedRelease;

/// Construction knobs for ReleaseCache.
struct ReleaseCacheOptions {
  /// Shard count; 0 defers to DPHIST_SERVE_SHARDS, then
  /// kDefaultServeShards.
  std::size_t shards = 0;
};

/// \brief Thread-safe, sharded memo of published releases keyed by
/// ReleaseKey.
///
/// Sharding: keys hash by tenant x dataset onto a fixed array of shards,
/// each with its own mutex and map, so serving throughput scales with
/// cores instead of serializing every tenant on one cache-wide lock.
/// Routing a key to its shard is lock-free (the shard array never changes
/// after construction); a whole namespace lives on one shard, so
/// namespace-scoped scans (`NewestFor`) lock exactly one shard.
///
/// Concurrency contract: for any key, the publish callback passed to
/// `GetOrPublish` runs **at most once concurrently and exactly once
/// successfully** — racing callers coalesce onto one publication (a
/// per-key mutex serializes them; losers return the winner's release
/// without invoking their own callback). A failed publish caches nothing,
/// so a later call may retry. Lookups never block behind an in-flight
/// publication of a different key.
///
/// Obs (recorded only while obs is enabled): `serve/cache/hits`,
/// `serve/cache/misses` (a miss is counted once per publish attempt, not
/// per coalesced waiter), `serve/cache/entries` tracks insertions,
/// `serve/cache/evictions` tracks removals.
class ReleaseCache {
 public:
  using PublishFn = std::function<Result<Histogram>()>;
  using SparsePublishFn = std::function<Result<sparse::SparseHistogram>()>;

  explicit ReleaseCache(ReleaseCacheOptions options = {});
  ReleaseCache(const ReleaseCache&) = delete;
  ReleaseCache& operator=(const ReleaseCache&) = delete;

  /// Returns the cached release for `key`, publishing it via `publish` on
  /// first use. Propagates the callback's error status (e.g. a
  /// ResourceExhausted budget refusal) without caching anything.
  Result<std::shared_ptr<const CachedRelease>> GetOrPublish(
      const ReleaseKey& key, const PublishFn& publish);

  /// Sparse counterpart of `GetOrPublish`, with the identical coalescing
  /// and exactly-once contract; dense and sparse releases share one
  /// keyspace (a key is one or the other, decided by which publish path
  /// first succeeded).
  Result<std::shared_ptr<const CachedRelease>> GetOrPublishSparse(
      const ReleaseKey& key, const SparsePublishFn& publish);

  /// The cached release for `key`, or null when absent. Never publishes.
  std::shared_ptr<const CachedRelease> Lookup(const ReleaseKey& key) const;

  /// Serving-path lookup: identical to `Lookup`, but a non-null result is
  /// recorded as a `serve/cache/hits` — the fast lane's single shard-mutex
  /// touch. A null result records nothing (the caller falls through to
  /// `GetOrPublish`, which counts the miss once per publish attempt, so
  /// hit/miss totals stay consistent with the pre-fast-lane accounting).
  std::shared_ptr<const CachedRelease> LookupServing(
      const ReleaseKey& key) const;

  /// Records one `serve/cache/hits` for a release resolved through a plain
  /// `Lookup` — for fast lanes that must defer the hit until after
  /// request validation (so accounting matches the non-fast-lane path
  /// without a second map lookup).
  static void CountServingHit();

  /// Removes the ready release for `key`; returns true when one was
  /// present. An in-flight publication of the same key is unaffected (its
  /// insert re-creates the entry).
  bool Evict(const ReleaseKey& key);

  /// Inserts an already-published release (journal replay). Idempotent:
  /// when `key` is already ready the existing release is returned and the
  /// histogram is discarded — replaying a journal twice cannot double any
  /// state.
  std::shared_ptr<const CachedRelease> RestorePublished(
      const ReleaseKey& key, Histogram histogram);

  /// Sparse counterpart of `RestorePublished` (journal replay of
  /// kPublishSparse records); same idempotence contract.
  std::shared_ptr<const CachedRelease> RestorePublishedSparse(
      const ReleaseKey& key, sparse::SparseHistogram sparse);

  /// The most recently published release in `tenant_key`'s namespace, or
  /// null when none exists — the degraded-serving fallback after a budget
  /// refusal. An empty `publisher` matches any publisher; a non-empty one
  /// filters to that publisher's releases. Never crosses a tenant/dataset
  /// boundary.
  std::shared_ptr<const CachedRelease> NewestFor(
      const TenantKey& tenant_key, std::string_view publisher) const;

  /// Number of successfully published (ready) releases across all shards.
  std::size_t size() const;

  /// Number of shards (for tests and `bench_serve`'s shard sweep).
  std::size_t shard_count() const { return shard_map_.count(); }

 private:
  struct Entry {
    /// Serializes publish attempts for this key; never held while the
    /// shard mutex is held.
    std::mutex publish_mutex;
    /// The ready release; guarded by the owning shard's mutex, null until
    /// a publish succeeded.
    std::shared_ptr<const CachedRelease> release;
  };

  /// Shared coalescing core of GetOrPublish/GetOrPublishSparse: `make`
  /// runs inside the per-key publish slot and produces the finished
  /// CachedRelease (without a sequence number, which the insert assigns).
  using MakeReleaseFn =
      std::function<Result<std::shared_ptr<CachedRelease>>()>;
  Result<std::shared_ptr<const CachedRelease>> DoGetOrPublish(
      const ReleaseKey& key, const MakeReleaseFn& make);

  /// Shared idempotent-insert core of RestorePublished*.
  std::shared_ptr<const CachedRelease> InsertRestored(
      const ReleaseKey& key, std::shared_ptr<CachedRelease> release);

  struct Shard {
    mutable std::mutex mutex;
    std::map<ReleaseKey, std::shared_ptr<Entry>, ReleaseKeyLess> entries;
  };

  Shard& ShardFor(const ReleaseKey& key) const {
    return *shards_[shard_map_.IndexFor(key.tenant, key.dataset)];
  }

  ShardMap shard_map_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Cache-wide publication order (sequence numbers must order releases
  /// across shards, since a tenant's namespace could in principle move
  /// between shard counts across restarts).
  std::atomic<std::uint64_t> next_sequence_{1};
};

}  // namespace serve
}  // namespace dphist

#endif  // DPHIST_SERVE_RELEASE_CACHE_H_
