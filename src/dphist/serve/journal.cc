#include "dphist/serve/journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <utility>

#include "dphist/common/binary_io.h"
#include "dphist/common/env.h"
#include "dphist/obs/obs.h"
#include "dphist/testing/failpoint.h"

namespace dphist {
namespace serve {

namespace {

constexpr std::string_view kMagic = "DPHJNL1\n";

// The journal's frame primitives (little-endian integers, raw IEEE-754
// double bits, u32-length-prefixed strings, IEEE CRC-32) are the shared
// ones in common/binary_io.h — the net wire codec frames the same way, and
// journal_test's golden-byte battery pins the format.
using binio::Crc32;
using binio::Cursor;
using binio::GetF64;
using binio::GetStr;
using binio::GetU32;
using binio::GetU64;
using binio::PutF64;
using binio::PutStr;
using binio::PutU32;
using binio::PutU64;

obs::Counter& RecordCounter() {
  static obs::Counter& counter =
      obs::Registry::Global().GetCounter("serve/journal/records");
  return counter;
}

obs::Counter& ByteCounter() {
  static obs::Counter& counter =
      obs::Registry::Global().GetCounter("serve/journal/bytes");
  return counter;
}

obs::Counter& ReplayedCounter() {
  static obs::Counter& counter =
      obs::Registry::Global().GetCounter("serve/journal/replayed_records");
  return counter;
}

obs::Counter& TruncatedCounter() {
  static obs::Counter& counter =
      obs::Registry::Global().GetCounter("serve/journal/truncated_bytes");
  return counter;
}

std::string EncodePayload(const JournalRecord& record) {
  std::string payload;
  payload.push_back(static_cast<char>(record.type));
  PutStr(payload, record.key.tenant);
  PutStr(payload, record.key.dataset);
  switch (record.type) {
    case JournalRecord::Type::kCharge:
      PutF64(payload, record.epsilon);
      payload.push_back(record.parallel ? 1 : 0);
      PutStr(payload, record.group);
      PutStr(payload, record.label);
      break;
    case JournalRecord::Type::kPublish:
      PutU64(payload, record.fingerprint);
      PutStr(payload, record.publisher);
      PutF64(payload, record.epsilon);
      PutU64(payload, record.seed);
      PutU64(payload, static_cast<std::uint64_t>(record.counts.size()));
      for (const double count : record.counts) {
        PutF64(payload, count);
      }
      break;
    case JournalRecord::Type::kPublishSparse: {
      PutU64(payload, record.fingerprint);
      PutStr(payload, record.publisher);
      PutF64(payload, record.epsilon);
      PutU64(payload, record.seed);
      PutU64(payload, record.domain);
      const std::size_t entries =
          std::min(record.keys.size(), record.counts.size());
      PutU64(payload, static_cast<std::uint64_t>(entries));
      for (std::size_t i = 0; i < entries; ++i) {
        PutU64(payload, record.keys[i]);
        PutF64(payload, record.counts[i]);
      }
      break;
    }
  }
  return payload;
}

// Strict payload decode: the record must parse AND consume every payload
// byte. A CRC-valid but undecodable payload (a writer from the future, or
// an astronomically unlucky corruption) is reported as undecodable so
// replay truncates there instead of guessing.
bool DecodePayload(std::string_view payload, JournalRecord* record) {
  Cursor in{payload};
  if (!in.Remaining(1)) return false;
  const auto type = static_cast<std::uint8_t>(in.bytes[in.pos++]);
  if (type != static_cast<std::uint8_t>(JournalRecord::Type::kCharge) &&
      type != static_cast<std::uint8_t>(JournalRecord::Type::kPublish) &&
      type !=
          static_cast<std::uint8_t>(JournalRecord::Type::kPublishSparse)) {
    return false;
  }
  record->type = static_cast<JournalRecord::Type>(type);
  if (!GetStr(in, &record->key.tenant) ||
      !GetStr(in, &record->key.dataset)) {
    return false;
  }
  if (record->type == JournalRecord::Type::kCharge) {
    if (!GetF64(in, &record->epsilon) || !in.Remaining(1)) return false;
    record->parallel = in.bytes[in.pos++] != 0;
    if (!GetStr(in, &record->group) || !GetStr(in, &record->label)) {
      return false;
    }
  } else if (record->type == JournalRecord::Type::kPublish) {
    std::uint64_t bins = 0;
    if (!GetU64(in, &record->fingerprint) ||
        !GetStr(in, &record->publisher) || !GetF64(in, &record->epsilon) ||
        !GetU64(in, &record->seed) || !GetU64(in, &bins)) {
      return false;
    }
    // Overflow-safe fit check: a flipped length byte must not trigger a
    // giant allocation before the CRC... which already passed — belt and
    // suspenders against CRC collisions.
    if (bins > (payload.size() - in.pos) / 8) return false;
    record->counts.resize(static_cast<std::size_t>(bins));
    for (double& count : record->counts) {
      if (!GetF64(in, &count)) return false;
    }
  } else {
    std::uint64_t entries = 0;
    if (!GetU64(in, &record->fingerprint) ||
        !GetStr(in, &record->publisher) || !GetF64(in, &record->epsilon) ||
        !GetU64(in, &record->seed) || !GetU64(in, &record->domain) ||
        !GetU64(in, &entries)) {
      return false;
    }
    // Same overflow-safe fit check; sparse entries are 16 bytes each.
    if (entries > (payload.size() - in.pos) / 16) return false;
    record->keys.resize(static_cast<std::size_t>(entries));
    record->counts.resize(static_cast<std::size_t>(entries));
    for (std::size_t i = 0; i < record->keys.size(); ++i) {
      if (!GetU64(in, &record->keys[i]) || !GetF64(in, &record->counts[i])) {
        return false;
      }
    }
  }
  return in.pos == payload.size();
}

Status WriteErrno(const char* what, const std::string& path) {
  return Status::Internal(std::string(what) + " failed for journal '" +
                          path + "': " + std::strerror(errno));
}

// Production sink: an O_APPEND file descriptor plus fsync.
class FileJournalSink final : public JournalSink {
 public:
  static Result<std::unique_ptr<JournalSink>> Open(const std::string& path) {
    const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT |
                                            O_CLOEXEC, 0644);
    if (fd < 0) {
      return WriteErrno("open", path);
    }
    return std::unique_ptr<JournalSink>(new FileJournalSink(fd, path));
  }

  ~FileJournalSink() override { ::close(fd_); }

  Status Append(const void* data, std::size_t size) override {
    const char* cursor = static_cast<const char*>(data);
    while (size > 0) {
      const ssize_t wrote = ::write(fd_, cursor, size);
      if (wrote < 0) {
        if (errno == EINTR) continue;
        return WriteErrno("write", path_);
      }
      cursor += wrote;
      size -= static_cast<std::size_t>(wrote);
    }
    return Status::Ok();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) {
      return WriteErrno("fsync", path_);
    }
    return Status::Ok();
  }

 private:
  FileJournalSink(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  int fd_;
  std::string path_;
};

}  // namespace

std::string_view JournalMagic() { return kMagic; }

std::string EncodeJournalRecord(const JournalRecord& record) {
  const std::string payload = EncodePayload(record);
  std::string frame;
  frame.reserve(8 + payload.size());
  PutU32(frame, static_cast<std::uint32_t>(payload.size()));
  PutU32(frame, Crc32(payload));
  frame += payload;
  return frame;
}

Result<ReplayResult> ReplayJournalBytes(std::string_view bytes) {
  ReplayResult result;
  if (bytes.empty()) {
    return result;
  }
  if (bytes.size() < kMagic.size()) {
    // A crash can tear even the header write. A strict prefix of the magic
    // is that crash; anything else never came from this journal.
    if (kMagic.substr(0, bytes.size()) == bytes) {
      result.truncated_bytes = bytes.size();
      return result;
    }
    return Status::DataLoss("journal header is not a DPHJNL1 magic prefix");
  }
  if (bytes.substr(0, kMagic.size()) != kMagic) {
    return Status::DataLoss(
        "journal magic mismatch: not a dphist journal (or a corrupted "
        "header — nothing can be salvaged without it)");
  }

  std::size_t pos = kMagic.size();
  while (pos < bytes.size()) {
    // Chaos hook: an induced replay failure (return-status) or latency at
    // record granularity.
    DPHIST_FAILPOINT_RETURN_IF_SET("serve/journal/replay_record");
    Cursor header{bytes, pos};
    std::uint32_t payload_len = 0;
    std::uint32_t stored_crc = 0;
    if (!GetU32(header, &payload_len) || !GetU32(header, &stored_crc) ||
        !header.Remaining(payload_len)) {
      break;  // torn frame header or torn payload: the tail starts here
    }
    const std::string_view payload = bytes.substr(header.pos, payload_len);
    if (Crc32(payload) != stored_crc) {
      break;  // bit rot or torn rewrite: never trust, never resync
    }
    JournalRecord record;
    if (!DecodePayload(payload, &record)) {
      break;
    }
    result.records.push_back(std::move(record));
    pos = header.pos + payload_len;
  }
  result.valid_bytes = pos;
  result.truncated_bytes = bytes.size() - pos;
  ReplayedCounter().Add(result.records.size());
  TruncatedCounter().Add(result.truncated_bytes);
  return result;
}

Result<ReplayResult> ReplayJournalFile(const std::string& path) {
  obs::ScopedTimer replay_timer("serve/journal/replay");
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    // Absent journal = first boot: nothing to replay, nothing lost.
    ReplayResult empty;
    return empty;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::Internal("read failed for journal '" + path + "'");
  }
  return ReplayJournalBytes(buffer.str());
}

struct Journal::Impl {
  std::mutex mutex;
  std::unique_ptr<JournalSink> sink;
  JournalOptions options;
  std::uint64_t bytes = 0;    // durable bytes incl. magic/preexisting
  std::uint64_t records = 0;  // appended through this handle
  std::chrono::steady_clock::time_point last_sync{};
  bool synced_once = false;

  Clock& clock() const {
    return options.clock != nullptr ? *options.clock : Clock::Real();
  }

  // Sync through the failpoint seam; callers hold `mutex`.
  Status DoSync() {
    DPHIST_FAILPOINT_RETURN_IF_SET("serve/journal/sync");
    DPHIST_RETURN_IF_ERROR(sink->Sync());
    last_sync = clock().Now();
    synced_once = true;
    return Status::Ok();
  }
};

Journal::Journal(std::unique_ptr<JournalSink> sink, JournalOptions options,
                 std::string path, std::uint64_t preexisting_bytes)
    : impl_(std::make_unique<Impl>()), path_(std::move(path)) {
  impl_->sink = std::move(sink);
  impl_->options = options;
  impl_->bytes = preexisting_bytes;
}

Journal::~Journal() = default;

Result<std::unique_ptr<Journal>> Journal::Open(const std::string& path,
                                               JournalOptions options) {
  // Validate whatever is already there and drop the torn tail, so frames
  // appended by this handle are always reachable by the next replay.
  DPHIST_ASSIGN_OR_RETURN(const ReplayResult existing,
                          ReplayJournalFile(path));
  if (existing.truncated()) {
    if (::truncate(path.c_str(),
                   static_cast<off_t>(existing.valid_bytes)) != 0) {
      return WriteErrno("truncate", path);
    }
  }
  DPHIST_ASSIGN_OR_RETURN(std::unique_ptr<JournalSink> sink,
                          FileJournalSink::Open(path));
  std::uint64_t bytes = existing.valid_bytes;
  if (bytes == 0) {
    DPHIST_RETURN_IF_ERROR(sink->Append(kMagic.data(), kMagic.size()));
    bytes = kMagic.size();
  }
  return std::unique_ptr<Journal>(
      new Journal(std::move(sink), options, path, bytes));
}

Result<std::unique_ptr<Journal>> Journal::WithSink(
    std::unique_ptr<JournalSink> sink, JournalOptions options,
    bool write_magic) {
  if (sink == nullptr) {
    return Status::InvalidArgument("Journal::WithSink requires a sink");
  }
  std::uint64_t bytes = 0;
  if (write_magic) {
    DPHIST_RETURN_IF_ERROR(sink->Append(kMagic.data(), kMagic.size()));
    bytes = kMagic.size();
  }
  return std::unique_ptr<Journal>(
      new Journal(std::move(sink), options, "<sink>", bytes));
}

Status Journal::Append(const JournalRecord& record) {
  const std::string frame = EncodeJournalRecord(record);
  std::lock_guard<std::mutex> lock(impl_->mutex);
  // Chaos hook: the write itself failing (disk full, injected fault). The
  // record is not durable; the caller must not acknowledge.
  DPHIST_FAILPOINT_RETURN_IF_SET("serve/journal/append");
  DPHIST_RETURN_IF_ERROR(impl_->sink->Append(frame.data(), frame.size()));
  impl_->bytes += frame.size();
  impl_->records += 1;
  RecordCounter().Increment();
  ByteCounter().Add(frame.size());
  switch (impl_->options.fsync_policy) {
    case FsyncPolicy::kEveryRecord:
      return impl_->DoSync();
    case FsyncPolicy::kInterval: {
      const auto now = impl_->clock().Now();
      if (!impl_->synced_once ||
          now - impl_->last_sync >= impl_->options.fsync_interval) {
        return impl_->DoSync();
      }
      return Status::Ok();
    }
    case FsyncPolicy::kNever:
      return Status::Ok();
  }
  return Status::Ok();
}

Status Journal::Sync() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->DoSync();
}

std::uint64_t Journal::bytes_written() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->bytes;
}

std::uint64_t Journal::records_written() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->records;
}

std::optional<std::string> JournalDirFromEnv() {
  return GetEnv("DPHIST_JOURNAL_DIR");
}

}  // namespace serve
}  // namespace dphist
