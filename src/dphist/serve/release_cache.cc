#include "dphist/serve/release_cache.h"

#include <cstring>
#include <tuple>
#include <utility>

#include "dphist/obs/obs.h"
#include "dphist/testing/failpoint.h"

namespace dphist {
namespace serve {

namespace {

// Counter references resolved once (Registry::GetCounter takes a mutex).
obs::Counter& HitCounter() {
  static obs::Counter& counter =
      obs::Registry::Global().GetCounter("serve/cache/hits");
  return counter;
}

obs::Counter& MissCounter() {
  static obs::Counter& counter =
      obs::Registry::Global().GetCounter("serve/cache/misses");
  return counter;
}

obs::Counter& EntryCounter() {
  static obs::Counter& counter =
      obs::Registry::Global().GetCounter("serve/cache/entries");
  return counter;
}

obs::Counter& EvictionCounter() {
  static obs::Counter& counter =
      obs::Registry::Global().GetCounter("serve/cache/evictions");
  return counter;
}

obs::Counter& FrameHitCounter() {
  static obs::Counter& counter =
      obs::Registry::Global().GetCounter("serve/frame_cache_hits");
  return counter;
}

obs::Counter& FrameMissCounter() {
  static obs::Counter& counter =
      obs::Registry::Global().GetCounter("serve/frame_cache_misses");
  return counter;
}

}  // namespace

std::uint64_t FingerprintHistogram(const Histogram& histogram) {
  // FNV-1a over the size and the raw double bits of every count. Bit-level
  // (not value-level) identity: -0.0 vs 0.0 or different NaN payloads are
  // different inputs to a publisher and must not alias in the cache.
  constexpr std::uint64_t kOffset = 1469598103934665603ULL;
  constexpr std::uint64_t kPrime = 1099511628211ULL;
  auto mix = [](std::uint64_t hash, std::uint64_t word) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (word >> (8 * byte)) & 0xffULL;
      hash *= kPrime;
    }
    return hash;
  };
  std::uint64_t hash = mix(kOffset, histogram.size());
  for (const double count : histogram.counts()) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &count, sizeof(bits));
    hash = mix(hash, bits);
  }
  return hash;
}

bool ReleaseKeyLess::operator()(const ReleaseKey& a,
                                const ReleaseKey& b) const {
  return std::tie(a.dataset_fingerprint, a.tenant, a.dataset, a.publisher,
                  a.epsilon, a.seed) <
         std::tie(b.dataset_fingerprint, b.tenant, b.dataset, b.publisher,
                  b.epsilon, b.seed);
}

SealedRelease::SealedRelease(ReleaseKey key, Histogram histogram)
    : key_(std::move(key)), histogram_(std::move(histogram)) {
  // Seal eagerly: a release is immutable from here on, so every reader
  // takes the histogram's lock-free prefix fast path.
  histogram_.SealPrefix();
}

SealedRelease::SealedRelease(ReleaseKey key, sparse::SparseHistogram sparse)
    : key_(std::move(key)), sparse_(std::move(sparse)) {}

std::shared_ptr<const std::string> SealedRelease::EncodedFrame(
    FrameCodec codec, const std::function<std::string()>& encode) const {
  FrameSlot& slot = frames_[static_cast<std::size_t>(codec)];
  if (slot.ready.load(std::memory_order_acquire)) {
    FrameHitCounter().Increment();
    return slot.frame;
  }
  std::lock_guard<std::mutex> lock(frame_mutex_);
  if (slot.ready.load(std::memory_order_relaxed)) {
    FrameHitCounter().Increment();
    return slot.frame;
  }
  FrameMissCounter().Increment();
  slot.frame = std::make_shared<const std::string>(encode());
  slot.ready.store(true, std::memory_order_release);
  return slot.frame;
}

ReleaseCache::ReleaseCache(ReleaseCacheOptions options)
    : shard_map_(options.shards) {
  shards_.reserve(shard_map_.count());
  for (std::size_t i = 0; i < shard_map_.count(); ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

Result<std::shared_ptr<const CachedRelease>> ReleaseCache::GetOrPublish(
    const ReleaseKey& key, const PublishFn& publish) {
  return DoGetOrPublish(
      key, [&key, &publish]() -> Result<std::shared_ptr<CachedRelease>> {
        Result<Histogram> published = publish();
        if (!published.ok()) {
          return published.status();
        }
        return std::make_shared<CachedRelease>(key,
                                               std::move(published).value());
      });
}

Result<std::shared_ptr<const CachedRelease>> ReleaseCache::GetOrPublishSparse(
    const ReleaseKey& key, const SparsePublishFn& publish) {
  return DoGetOrPublish(
      key, [&key, &publish]() -> Result<std::shared_ptr<CachedRelease>> {
        Result<sparse::SparseHistogram> published = publish();
        if (!published.ok()) {
          return published.status();
        }
        return std::make_shared<CachedRelease>(key,
                                               std::move(published).value());
      });
}

Result<std::shared_ptr<const CachedRelease>> ReleaseCache::DoGetOrPublish(
    const ReleaseKey& key, const MakeReleaseFn& make) {
  Shard& shard = ShardFor(key);
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto [it, inserted] = shard.entries.try_emplace(key);
    if (inserted) {
      it->second = std::make_shared<Entry>();
    } else if (it->second->release != nullptr) {
      HitCounter().Increment();
      return it->second->release;
    }
    entry = it->second;
  }
  // Serialize publish attempts for this key. Waiters blocked here while
  // the winner publishes wake up, re-check, and take the hit path below
  // without ever invoking their own callback.
  std::lock_guard<std::mutex> publish_lock(entry->publish_mutex);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (entry->release != nullptr) {
      HitCounter().Increment();
      return entry->release;
    }
  }
  MissCounter().Increment();
  // Chaos hook: a publisher failing mid-flight, before any budget charge.
  // The error propagates uncached, so a later call may retry — the
  // exactly-once contract is on *successful* publication.
  DPHIST_FAILPOINT_RETURN_IF_SET("serve/cache/publish");
  Result<std::shared_ptr<CachedRelease>> made = make();
  if (!made.ok()) {
    return made.status();
  }
  // Chaos hook: latency between publish success and cache insert, to
  // widen the window where racing waiters block on the publish mutex.
  DPHIST_FAILPOINT("serve/cache/insert");
  std::shared_ptr<CachedRelease> release = std::move(made).value();
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    // An eviction may have removed the entry while this publish ran (a
    // racing caller then re-created it and may even have finished its own
    // publish). Re-anchor, and keep whichever release is already ready —
    // equal keys imply bit-identical releases, so dropping ours is safe.
    auto [it, inserted] = shard.entries.try_emplace(key, entry);
    (void)inserted;
    if (it->second->release == nullptr) {
      release->sequence_ =
          next_sequence_.fetch_add(1, std::memory_order_relaxed);
      it->second->release = std::move(release);
      EntryCounter().Increment();
    }
    return it->second->release;
  }
}

std::shared_ptr<const CachedRelease> ReleaseCache::Lookup(
    const ReleaseKey& key) const {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.entries.find(key);
  return it == shard.entries.end() ? nullptr : it->second->release;
}

std::shared_ptr<const CachedRelease> ReleaseCache::LookupServing(
    const ReleaseKey& key) const {
  std::shared_ptr<const CachedRelease> release = Lookup(key);
  if (release != nullptr) {
    HitCounter().Increment();
  }
  return release;
}

void ReleaseCache::CountServingHit() { HitCounter().Increment(); }

bool ReleaseCache::Evict(const ReleaseKey& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.entries.find(key);
  if (it == shard.entries.end() || it->second->release == nullptr) {
    return false;
  }
  shard.entries.erase(it);
  EvictionCounter().Increment();
  return true;
}

std::shared_ptr<const CachedRelease> ReleaseCache::RestorePublished(
    const ReleaseKey& key, Histogram histogram) {
  return InsertRestored(
      key, std::make_shared<CachedRelease>(key, std::move(histogram)));
}

std::shared_ptr<const CachedRelease> ReleaseCache::RestorePublishedSparse(
    const ReleaseKey& key, sparse::SparseHistogram sparse) {
  return InsertRestored(
      key, std::make_shared<CachedRelease>(key, std::move(sparse)));
}

std::shared_ptr<const CachedRelease> ReleaseCache::InsertRestored(
    const ReleaseKey& key, std::shared_ptr<CachedRelease> release) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto [it, inserted] = shard.entries.try_emplace(key);
  if (inserted) {
    it->second = std::make_shared<Entry>();
  } else if (it->second->release != nullptr) {
    return it->second->release;  // idempotent replay
  }
  release->sequence_ = next_sequence_.fetch_add(1, std::memory_order_relaxed);
  it->second->release = std::move(release);
  EntryCounter().Increment();
  return it->second->release;
}

std::shared_ptr<const CachedRelease> ReleaseCache::NewestFor(
    const TenantKey& tenant_key, std::string_view publisher) const {
  // The whole namespace hashes to one shard, so this scan is consistent
  // under exactly one lock.
  Shard& shard = *shards_[shard_map_.IndexFor(tenant_key)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  std::shared_ptr<const CachedRelease> newest;
  for (const auto& [key, entry] : shard.entries) {
    if (key.tenant != tenant_key.tenant ||
        key.dataset != tenant_key.dataset || entry->release == nullptr) {
      continue;
    }
    if (!publisher.empty() && key.publisher != publisher) {
      continue;
    }
    if (newest == nullptr || entry->release->sequence() > newest->sequence()) {
      newest = entry->release;
    }
  }
  return newest;
}

std::size_t ReleaseCache::size() const {
  std::size_t ready = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (const auto& [key, entry] : shard->entries) {
      ready += entry->release != nullptr ? 1 : 0;
    }
  }
  return ready;
}

}  // namespace serve
}  // namespace dphist
