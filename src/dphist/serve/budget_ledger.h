#ifndef DPHIST_SERVE_BUDGET_LEDGER_H_
#define DPHIST_SERVE_BUDGET_LEDGER_H_

#include <cstddef>
#include <mutex>
#include <string>

#include "dphist/common/status.h"
#include "dphist/privacy/budget.h"
#include "dphist/serve/journal.h"
#include "dphist/serve/tenant.h"

namespace dphist {
namespace serve {

/// \brief A per-namespace (tenant x dataset), thread-safe privacy budget:
/// `BudgetAccountant` behind one mutex, so concurrent publish requests
/// against the same namespace compose *sequentially* — each charge sees
/// every previously accepted charge, and the accountant's accept/reject
/// arithmetic is exactly the single-threaded one. Refusal is a typed
/// Status (`kResourceExhausted`), never a crash; the serving front-end
/// reacts to it by degrading to a cached release.
///
/// Durability: when constructed with a `Journal`, every *accepted* charge
/// is appended as a `kCharge` record at its commit point, before the
/// charge's Status is returned — so a crash can never forget spend that a
/// release was (or is about to be) sampled against. A journal append
/// failure keeps the epsilon spent in memory (the conservative direction)
/// and surfaces the journal's error to the caller, who must not release
/// anything. `RestoreCharge` is the replay inverse: it re-applies a
/// journaled charge without re-journaling it.
///
/// The wrapped accountant maintains its spend incrementally (see
/// privacy/budget.h), so a long-lived ledger absorbing millions of charges
/// stays O(1) per charge instead of the historical O(n).
///
/// Obs: `serve/ledger/charges` counts accepted charges,
/// `serve/ledger/refusals` counts ResourceExhausted rejections.
class BudgetLedger {
 public:
  /// Creates an in-memory-only ledger with `total_epsilon` to spend
  /// (non-positive pins to 0, same as BudgetAccountant: everything refuses
  /// loudly). Keyed to the default namespace.
  explicit BudgetLedger(double total_epsilon);

  /// Creates a ledger for `key` whose accepted charges are journaled
  /// through `journal` (may be null for an in-memory ledger).
  BudgetLedger(TenantKey key, double total_epsilon, Journal* journal);

  BudgetLedger(const BudgetLedger&) = delete;
  BudgetLedger& operator=(const BudgetLedger&) = delete;

  /// Sequential charge; see BudgetAccountant::ChargeSequential. Journaled
  /// at the commit point when a journal is attached.
  Status Charge(double epsilon, std::string label);

  /// Parallel-composition charge; see BudgetAccountant::ChargeParallel.
  /// Journaled at the commit point when a journal is attached.
  Status ChargeParallel(double epsilon, std::string group, std::string label);

  /// Replays one journaled charge into the accountant WITHOUT journaling
  /// it again. Returns the accountant's verdict: a refusal here means the
  /// journal holds more spend than the (possibly re-configured, smaller)
  /// grant covers — the spend pins at the total, which is the no-overspend
  /// direction. The record must be a kCharge for this ledger's namespace.
  Status RestoreCharge(const JournalRecord& record);

  /// The namespace this ledger accounts for.
  const TenantKey& tenant_key() const { return key_; }

  /// Total epsilon granted at construction.
  double total_epsilon() const;

  /// Epsilon consumed so far.
  double spent_epsilon() const;

  /// Remaining epsilon (never negative).
  double remaining_epsilon() const;

  /// Number of accepted charges.
  std::size_t charge_count() const;

  /// Human-readable ledger (BudgetAccountant::ToString under the lock).
  std::string ToString() const;

 private:
  TenantKey key_;
  Journal* journal_;  // not owned; null = in-memory only
  mutable std::mutex mutex_;
  BudgetAccountant accountant_;
};

}  // namespace serve
}  // namespace dphist

#endif  // DPHIST_SERVE_BUDGET_LEDGER_H_
