#ifndef DPHIST_SERVE_BUDGET_LEDGER_H_
#define DPHIST_SERVE_BUDGET_LEDGER_H_

#include <cstddef>
#include <mutex>
#include <string>

#include "dphist/common/status.h"
#include "dphist/privacy/budget.h"

namespace dphist {
namespace serve {

/// \brief A per-dataset, thread-safe privacy budget: `BudgetAccountant`
/// behind one mutex, so concurrent publish requests against the same
/// dataset compose *sequentially* — each charge sees every previously
/// accepted charge, and the accountant's accept/reject arithmetic is
/// exactly the single-threaded one. Refusal is a typed Status
/// (`kResourceExhausted`), never a crash; the serving front-end reacts to
/// it by degrading to a cached release.
///
/// The wrapped accountant maintains its spend incrementally (see
/// privacy/budget.h), so a long-lived ledger absorbing millions of charges
/// stays O(1) per charge instead of the historical O(n).
///
/// Obs: `serve/ledger/charges` counts accepted charges,
/// `serve/ledger/refusals` counts ResourceExhausted rejections.
class BudgetLedger {
 public:
  /// Creates a ledger with `total_epsilon` to spend (non-positive pins to
  /// 0, same as BudgetAccountant: everything refuses loudly).
  explicit BudgetLedger(double total_epsilon);

  BudgetLedger(const BudgetLedger&) = delete;
  BudgetLedger& operator=(const BudgetLedger&) = delete;

  /// Sequential charge; see BudgetAccountant::ChargeSequential.
  Status Charge(double epsilon, std::string label);

  /// Parallel-composition charge; see BudgetAccountant::ChargeParallel.
  Status ChargeParallel(double epsilon, std::string group, std::string label);

  /// Total epsilon granted at construction.
  double total_epsilon() const;

  /// Epsilon consumed so far.
  double spent_epsilon() const;

  /// Remaining epsilon (never negative).
  double remaining_epsilon() const;

  /// Number of accepted charges.
  std::size_t charge_count() const;

  /// Human-readable ledger (BudgetAccountant::ToString under the lock).
  std::string ToString() const;

 private:
  mutable std::mutex mutex_;
  BudgetAccountant accountant_;
};

}  // namespace serve
}  // namespace dphist

#endif  // DPHIST_SERVE_BUDGET_LEDGER_H_
