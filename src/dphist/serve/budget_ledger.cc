#include "dphist/serve/budget_ledger.h"

#include <utility>

#include "dphist/obs/obs.h"
#include "dphist/testing/failpoint.h"

namespace dphist {
namespace serve {

namespace {

obs::Counter& ChargeCounter() {
  static obs::Counter& counter =
      obs::Registry::Global().GetCounter("serve/ledger/charges");
  return counter;
}

obs::Counter& RefusalCounter() {
  static obs::Counter& counter =
      obs::Registry::Global().GetCounter("serve/ledger/refusals");
  return counter;
}

// Records the charge outcome in the serve counters. Only budget refusals
// count as refusals; argument errors (epsilon <= 0) are caller bugs, not
// serving events.
Status Record(Status status) {
  if (status.ok()) {
    ChargeCounter().Increment();
  } else if (status.code() == StatusCode::kResourceExhausted) {
    RefusalCounter().Increment();
  }
  return status;
}

}  // namespace

BudgetLedger::BudgetLedger(double total_epsilon)
    : accountant_(total_epsilon) {}

Status BudgetLedger::Charge(double epsilon, std::string label) {
  // Chaos hooks: an induced refusal (return-status, before anything is
  // spent — the degradation contract's trigger) or a slow ledger (delay).
  // Sits outside the lock so an injected delay stalls this charge without
  // serializing the introspection accessors behind it.
  DPHIST_FAILPOINT_RETURN_IF_SET("serve/ledger/charge");
  std::lock_guard<std::mutex> lock(mutex_);
  return Record(accountant_.ChargeSequential(epsilon, std::move(label)));
}

Status BudgetLedger::ChargeParallel(double epsilon, std::string group,
                                    std::string label) {
  std::lock_guard<std::mutex> lock(mutex_);
  return Record(accountant_.ChargeParallel(epsilon, std::move(group),
                                           std::move(label)));
}

double BudgetLedger::total_epsilon() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return accountant_.total_epsilon();
}

double BudgetLedger::spent_epsilon() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return accountant_.spent_epsilon();
}

double BudgetLedger::remaining_epsilon() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return accountant_.remaining_epsilon();
}

std::size_t BudgetLedger::charge_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return accountant_.charges().size();
}

std::string BudgetLedger::ToString() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return accountant_.ToString();
}

}  // namespace serve
}  // namespace dphist
