#include "dphist/serve/budget_ledger.h"

#include <utility>

#include "dphist/obs/obs.h"
#include "dphist/testing/failpoint.h"

namespace dphist {
namespace serve {

namespace {

obs::Counter& ChargeCounter() {
  static obs::Counter& counter =
      obs::Registry::Global().GetCounter("serve/ledger/charges");
  return counter;
}

obs::Counter& RefusalCounter() {
  static obs::Counter& counter =
      obs::Registry::Global().GetCounter("serve/ledger/refusals");
  return counter;
}

// Records the charge outcome in the serve counters. Only budget refusals
// count as refusals; argument errors (epsilon <= 0) are caller bugs, not
// serving events.
Status Record(Status status) {
  if (status.ok()) {
    ChargeCounter().Increment();
  } else if (status.code() == StatusCode::kResourceExhausted) {
    RefusalCounter().Increment();
  }
  return status;
}

}  // namespace

BudgetLedger::BudgetLedger(double total_epsilon)
    : BudgetLedger(DefaultTenantKey(), total_epsilon, nullptr) {}

BudgetLedger::BudgetLedger(TenantKey key, double total_epsilon,
                           Journal* journal)
    : key_(std::move(key)), journal_(journal), accountant_(total_epsilon) {}

Status BudgetLedger::Charge(double epsilon, std::string label) {
  // Chaos hooks: an induced refusal (return-status, before anything is
  // spent — the degradation contract's trigger) or a slow ledger (delay).
  // Sits outside the lock so an injected delay stalls this charge without
  // serializing the introspection accessors behind it.
  DPHIST_FAILPOINT_RETURN_IF_SET("serve/ledger/charge");
  std::lock_guard<std::mutex> lock(mutex_);
  Status status = Record(accountant_.ChargeSequential(epsilon, label));
  if (!status.ok() || journal_ == nullptr) {
    return status;
  }
  // Commit point: the spend is accepted in memory; make it durable before
  // the caller learns it succeeded. An append failure leaves the epsilon
  // spent (conservative — we may under-release, never over-spend) and
  // tells the caller not to release anything against this charge.
  JournalRecord record;
  record.type = JournalRecord::Type::kCharge;
  record.key = key_;
  record.epsilon = epsilon;
  record.parallel = false;
  record.label = std::move(label);
  return journal_->Append(record);
}

Status BudgetLedger::ChargeParallel(double epsilon, std::string group,
                                    std::string label) {
  std::lock_guard<std::mutex> lock(mutex_);
  Status status = Record(accountant_.ChargeParallel(epsilon, group, label));
  if (!status.ok() || journal_ == nullptr) {
    return status;
  }
  JournalRecord record;
  record.type = JournalRecord::Type::kCharge;
  record.key = key_;
  record.epsilon = epsilon;
  record.parallel = true;
  record.group = std::move(group);
  record.label = std::move(label);
  return journal_->Append(record);
}

Status BudgetLedger::RestoreCharge(const JournalRecord& record) {
  if (record.type != JournalRecord::Type::kCharge) {
    return Status::InvalidArgument(
        "RestoreCharge requires a kCharge record");
  }
  if (record.key != key_) {
    return Status::PermissionDenied(
        "journal charge for namespace '" + FormatTenantKey(record.key) +
        "' replayed into ledger for '" + FormatTenantKey(key_) + "'");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  // Replay never journals: the record is already durable. The accountant's
  // verdict passes through so recovery can count refusals (a shrunk grant).
  if (record.parallel) {
    return Record(
        accountant_.ChargeParallel(record.epsilon, record.group,
                                   record.label));
  }
  return Record(accountant_.ChargeSequential(record.epsilon, record.label));
}

double BudgetLedger::total_epsilon() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return accountant_.total_epsilon();
}

double BudgetLedger::spent_epsilon() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return accountant_.spent_epsilon();
}

double BudgetLedger::remaining_epsilon() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return accountant_.remaining_epsilon();
}

std::size_t BudgetLedger::charge_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return accountant_.charges().size();
}

std::string BudgetLedger::ToString() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return accountant_.ToString();
}

}  // namespace serve
}  // namespace dphist
