#ifndef DPHIST_SERVE_TENANT_H_
#define DPHIST_SERVE_TENANT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <tuple>

namespace dphist {
namespace serve {

/// \brief Identity of one serving namespace: which logical owner, which of
/// that owner's datasets. Every ledger, cache entry, and journal record in
/// the release store is keyed by a TenantKey, so two tenants registering
/// datasets with the same name never share budget, releases, or the
/// degraded-serving fallback — the isolation invariant the multi-tenant
/// store exists to enforce.
struct TenantKey {
  std::string tenant;
  std::string dataset;

  friend bool operator==(const TenantKey&, const TenantKey&) = default;
};

/// Strict weak order for map storage (tenant first, then dataset).
struct TenantKeyLess {
  using is_transparent = void;
  bool operator()(const TenantKey& a, const TenantKey& b) const {
    return std::tie(a.tenant, a.dataset) < std::tie(b.tenant, b.dataset);
  }
};

/// 64-bit FNV-1a over `tenant`, a 0 separator, and `dataset`. The separator
/// makes ("ab","c") and ("a","bc") hash differently; used by the sharded
/// release cache to pin a whole tenant x dataset namespace to one shard.
inline std::uint64_t HashTenantKey(std::string_view tenant,
                                   std::string_view dataset) {
  constexpr std::uint64_t kOffset = 1469598103934665603ULL;
  constexpr std::uint64_t kPrime = 1099511628211ULL;
  std::uint64_t hash = kOffset;
  auto mix = [&hash](std::string_view bytes) {
    for (const char c : bytes) {
      hash ^= static_cast<unsigned char>(c);
      hash *= kPrime;
    }
  };
  mix(tenant);
  hash ^= 0;
  hash *= kPrime;
  mix(dataset);
  return hash;
}

inline std::uint64_t HashTenantKey(const TenantKey& key) {
  return HashTenantKey(key.tenant, key.dataset);
}

/// "tenant/dataset" for log and error messages.
inline std::string FormatTenantKey(const TenantKey& key) {
  return key.tenant + "/" + key.dataset;
}

/// The namespace the legacy single-tenant ReleaseServer constructor (and
/// every pre-tenant call site) maps onto.
inline TenantKey DefaultTenantKey() { return {"default", "default"}; }

}  // namespace serve
}  // namespace dphist

#endif  // DPHIST_SERVE_TENANT_H_
