#ifndef DPHIST_QUERY_WORKLOAD_H_
#define DPHIST_QUERY_WORKLOAD_H_

#include <cstddef>
#include <vector>

#include "dphist/common/result.h"
#include "dphist/query/range_query.h"
#include "dphist/random/rng.h"

namespace dphist {

/// \brief Generators for the range-query workloads used in the paper's
/// evaluation.

/// `count` ranges with both endpoints uniform over the domain (the paper's
/// "random range queries"). Requires domain_size >= 1 and count >= 1.
Result<std::vector<RangeQuery>> RandomRangeWorkload(std::size_t domain_size,
                                                    std::size_t count,
                                                    Rng& rng);

/// `count` ranges of exactly `length` bins with uniformly random start (the
/// workload behind the error-vs-query-length figure). Requires
/// 1 <= length <= domain_size.
Result<std::vector<RangeQuery>> FixedLengthWorkload(std::size_t domain_size,
                                                    std::size_t length,
                                                    std::size_t count,
                                                    Rng& rng);

/// Every unit-bin query [i, i+1) — measures the published histogram
/// point-wise.
std::vector<RangeQuery> AllUnitWorkload(std::size_t domain_size);

/// All prefix ranges [0, i) for i = 1..n — a proxy for CDF accuracy.
std::vector<RangeQuery> AllPrefixWorkload(std::size_t domain_size);

}  // namespace dphist

#endif  // DPHIST_QUERY_WORKLOAD_H_
