#include "dphist/query/sparse_query.h"

#include <string>

namespace dphist {

Status ValidateSparseQueries(const std::vector<RangeQuery>& queries,
                             std::uint64_t domain_size) {
  // Same fail-loudly contract as the dense ValidateQueries: never clamp,
  // never swap, never silently drop.
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const RangeQuery& q = queries[i];
    if (q.begin >= q.end || static_cast<std::uint64_t>(q.end) > domain_size) {
      return Status::InvalidArgument(
          "range query " + std::to_string(i) + " [" +
          std::to_string(q.begin) + ", " + std::to_string(q.end) +
          ") is " + (q.begin >= q.end ? "empty or inverted" : "out of domain") +
          " (domain size " + std::to_string(domain_size) + ")");
    }
  }
  return Status::Ok();
}

Result<std::vector<double>> AnswerQueriesSparse(
    const sparse::SparseHistogram& histogram,
    const std::vector<RangeQuery>& queries) {
  DPHIST_RETURN_IF_ERROR(
      ValidateSparseQueries(queries, histogram.domain_size()));
  std::vector<double> answers;
  answers.reserve(queries.size());
  for (const RangeQuery& q : queries) {
    answers.push_back(histogram.RangeSumUnchecked(q.begin, q.end));
  }
  return answers;
}

}  // namespace dphist
