#include "dphist/query/range_query.h"

#include <string>

namespace dphist {

Status ValidateQueries(const std::vector<RangeQuery>& queries,
                       std::size_t domain_size) {
  // Policy: never clamp, never swap, never silently drop — an out-of-domain
  // or inverted query is a caller bug and must name the offender (same
  // fail-loudly contract as RankedFenwick's range checks).
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const RangeQuery& q = queries[i];
    if (q.begin >= q.end || q.end > domain_size) {
      return Status::InvalidArgument(
          "range query " + std::to_string(i) + " [" +
          std::to_string(q.begin) + ", " + std::to_string(q.end) +
          ") is " + (q.begin >= q.end ? "empty or inverted" : "out of domain") +
          " (domain size " + std::to_string(domain_size) + ")");
    }
  }
  return Status::Ok();
}

Result<std::vector<double>> AnswerQueries(
    const Histogram& histogram, const std::vector<RangeQuery>& queries) {
  DPHIST_RETURN_IF_ERROR(ValidateQueries(queries, histogram.size()));
  std::vector<double> answers;
  answers.reserve(queries.size());
  for (const RangeQuery& q : queries) {
    answers.push_back(histogram.RangeSumUnchecked(q.begin, q.end));
  }
  return answers;
}

}  // namespace dphist
