#include "dphist/query/range_query.h"

namespace dphist {

Status ValidateQueries(const std::vector<RangeQuery>& queries,
                       std::size_t domain_size) {
  for (const RangeQuery& q : queries) {
    if (q.begin >= q.end || q.end > domain_size) {
      return Status::InvalidArgument(
          "range query out of bounds or empty");
    }
  }
  return Status::Ok();
}

Result<std::vector<double>> AnswerQueries(
    const Histogram& histogram, const std::vector<RangeQuery>& queries) {
  DPHIST_RETURN_IF_ERROR(ValidateQueries(queries, histogram.size()));
  std::vector<double> answers;
  answers.reserve(queries.size());
  for (const RangeQuery& q : queries) {
    answers.push_back(histogram.RangeSumUnchecked(q.begin, q.end));
  }
  return answers;
}

}  // namespace dphist
