#include "dphist/query/range_query.h"

#include <string>

namespace dphist {

Status ValidateQueries(const std::vector<RangeQuery>& queries,
                       std::size_t domain_size) {
  // Policy: never clamp, never swap, never silently drop — an out-of-domain
  // or inverted query is a caller bug and must name the offender (same
  // fail-loudly contract as RankedFenwick's range checks).
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const RangeQuery& q = queries[i];
    if (q.begin >= q.end || q.end > domain_size) {
      return Status::InvalidArgument(
          "range query " + std::to_string(i) + " [" +
          std::to_string(q.begin) + ", " + std::to_string(q.end) +
          ") is " + (q.begin >= q.end ? "empty or inverted" : "out of domain") +
          " (domain size " + std::to_string(domain_size) + ")");
    }
  }
  return Status::Ok();
}

Result<std::vector<double>> AnswerQueries(
    const Histogram& histogram, const std::vector<RangeQuery>& queries,
    const AnswerQueriesOptions& options) {
  DPHIST_RETURN_IF_ERROR(ValidateQueries(queries, histogram.size()));
  // Seal once on the caller so the fan-out below reads a finished prefix
  // table through the lock-free fast path on every thread.
  histogram.SealPrefix();
  std::vector<double> answers(queries.size());
  auto answer_range = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      answers[i] =
          histogram.RangeSumUnchecked(queries[i].begin, queries[i].end);
    }
  };
  ThreadPool& pool =
      options.pool != nullptr ? *options.pool : ThreadPool::Global();
  // Each index writes only answers[i], so any chunking of [0, n) produces
  // the same bytes — the deterministic-parallelism contract.
  if (pool.thread_count() > 1 && queries.size() >= options.min_parallel) {
    pool.ParallelForChunks(0, queries.size(), /*min_chunk=*/64, answer_range);
  } else {
    answer_range(0, queries.size());
  }
  return answers;
}

Result<std::vector<double>> AnswerQueries(
    const Histogram& histogram, const std::vector<RangeQuery>& queries) {
  return AnswerQueries(histogram, queries, AnswerQueriesOptions{});
}

}  // namespace dphist
