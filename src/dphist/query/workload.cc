#include "dphist/query/workload.h"

#include <algorithm>
#include <cstdint>
#include <string>

#include "dphist/random/distributions.h"

namespace dphist {

namespace {

// Largest domain any histogram representation supports (the sparse cap,
// sparse::kMaxSparseDomain). Workload generators over a larger "domain"
// would silently produce queries no histogram can answer, so the bound is
// checked here with a typed error.
constexpr std::uint64_t kMaxWorkloadDomain = 1ULL << 63;

Status ValidateWorkloadDomain(std::size_t domain_size) {
  if (static_cast<std::uint64_t>(domain_size) > kMaxWorkloadDomain) {
    return Status::InvalidArgument(
        "workload domain size " + std::to_string(domain_size) +
        " exceeds the 2^63 maximum");
  }
  return Status::Ok();
}

}  // namespace

Result<std::vector<RangeQuery>> RandomRangeWorkload(std::size_t domain_size,
                                                    std::size_t count,
                                                    Rng& rng) {
  if (domain_size == 0 || count == 0) {
    return Status::InvalidArgument(
        "RandomRangeWorkload requires a non-empty domain and count");
  }
  DPHIST_RETURN_IF_ERROR(ValidateWorkloadDomain(domain_size));
  std::vector<RangeQuery> queries;
  queries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::size_t a = SampleIndex(rng, domain_size);
    std::size_t b = SampleIndex(rng, domain_size);
    if (a > b) {
      std::swap(a, b);
    }
    queries.push_back(RangeQuery{a, b + 1});
  }
  return queries;
}

Result<std::vector<RangeQuery>> FixedLengthWorkload(std::size_t domain_size,
                                                    std::size_t length,
                                                    std::size_t count,
                                                    Rng& rng) {
  if (length == 0 || length > domain_size || count == 0) {
    return Status::InvalidArgument(
        "FixedLengthWorkload requires 1 <= length <= domain_size");
  }
  DPHIST_RETURN_IF_ERROR(ValidateWorkloadDomain(domain_size));
  std::vector<RangeQuery> queries;
  queries.reserve(count);
  const std::size_t max_start = domain_size - length;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t start = SampleIndex(rng, max_start + 1);
    queries.push_back(RangeQuery{start, start + length});
  }
  return queries;
}

std::vector<RangeQuery> AllUnitWorkload(std::size_t domain_size) {
  std::vector<RangeQuery> queries;
  queries.reserve(domain_size);
  for (std::size_t i = 0; i < domain_size; ++i) {
    queries.push_back(RangeQuery{i, i + 1});
  }
  return queries;
}

std::vector<RangeQuery> AllPrefixWorkload(std::size_t domain_size) {
  std::vector<RangeQuery> queries;
  queries.reserve(domain_size);
  for (std::size_t i = 1; i <= domain_size; ++i) {
    queries.push_back(RangeQuery{0, i});
  }
  return queries;
}

}  // namespace dphist
