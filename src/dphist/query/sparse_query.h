#ifndef DPHIST_QUERY_SPARSE_QUERY_H_
#define DPHIST_QUERY_SPARSE_QUERY_H_

/// \file
/// \brief Range-query answering over sparse histograms, consistent with
/// the dense `range_query` semantics: half-open `[begin, end)` ranges,
/// identical validation rules, identical answers when the sparse histogram
/// is a materialization of the dense one. Each query is answered in
/// O(log k) by binary search over the released keys.

#include <cstdint>
#include <vector>

#include "dphist/common/result.h"
#include "dphist/common/status.h"
#include "dphist/query/range_query.h"
#include "dphist/sparse/sparse_histogram.h"

namespace dphist {

/// Validates `queries` against a 64-bit sparse domain: every query must be
/// non-empty, non-inverted, and end within `domain_size`. Same rules as the
/// dense `ValidateQueries`, typed `kInvalidArgument` naming the offender.
Status ValidateSparseQueries(const std::vector<RangeQuery>& queries,
                             std::uint64_t domain_size);

/// Answers every query against `histogram` after validation.
Result<std::vector<double>> AnswerQueriesSparse(
    const sparse::SparseHistogram& histogram,
    const std::vector<RangeQuery>& queries);

}  // namespace dphist

#endif  // DPHIST_QUERY_SPARSE_QUERY_H_
