#ifndef DPHIST_QUERY_RANGE_QUERY_H_
#define DPHIST_QUERY_RANGE_QUERY_H_

#include <cstddef>
#include <vector>

#include "dphist/common/parallel_defaults.h"
#include "dphist/common/result.h"
#include "dphist/common/status.h"
#include "dphist/common/thread_pool.h"
#include "dphist/hist/histogram.h"

namespace dphist {

/// \brief A half-open range-count query over unit bins: "how many records
/// fall in bins [begin, end)?" — the workload the paper's evaluation
/// measures accuracy on.
struct RangeQuery {
  std::size_t begin = 0;
  std::size_t end = 0;

  /// Query length in unit bins.
  std::size_t length() const { return end - begin; }

  friend bool operator==(const RangeQuery&, const RangeQuery&) = default;
};

/// Validates that every query fits the domain [0, domain_size) and is
/// non-empty.
Status ValidateQueries(const std::vector<RangeQuery>& queries,
                       std::size_t domain_size);

/// Execution knobs for AnswerQueries.
struct AnswerQueriesOptions {
  /// Pool for the per-query fan-out; nullptr means ThreadPool::Global().
  ThreadPool* pool = nullptr;
  /// Batches smaller than this answer inline on the caller — each answer
  /// is one O(1) prefix-sum subtraction, so fork/join only pays for
  /// itself on large batches (same cut-over constant as the solver
  /// stages and the serve layer).
  std::size_t min_parallel = kDefaultMinParallelCandidates;
};

/// Evaluates every query against `histogram`. Fails if any query is out of
/// bounds. Large batches fan out across the pool; each query index writes
/// only its own answer slot, so the result is bit-identical at any thread
/// count (the histogram's prefix table is sealed before the fan-out).
Result<std::vector<double>> AnswerQueries(
    const Histogram& histogram, const std::vector<RangeQuery>& queries,
    const AnswerQueriesOptions& options);

/// Default-options overload (global pool, standard cut-over).
Result<std::vector<double>> AnswerQueries(
    const Histogram& histogram, const std::vector<RangeQuery>& queries);

}  // namespace dphist

#endif  // DPHIST_QUERY_RANGE_QUERY_H_
