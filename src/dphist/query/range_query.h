#ifndef DPHIST_QUERY_RANGE_QUERY_H_
#define DPHIST_QUERY_RANGE_QUERY_H_

#include <cstddef>
#include <vector>

#include "dphist/common/result.h"
#include "dphist/common/status.h"
#include "dphist/hist/histogram.h"

namespace dphist {

/// \brief A half-open range-count query over unit bins: "how many records
/// fall in bins [begin, end)?" — the workload the paper's evaluation
/// measures accuracy on.
struct RangeQuery {
  std::size_t begin = 0;
  std::size_t end = 0;

  /// Query length in unit bins.
  std::size_t length() const { return end - begin; }

  friend bool operator==(const RangeQuery&, const RangeQuery&) = default;
};

/// Validates that every query fits the domain [0, domain_size) and is
/// non-empty.
Status ValidateQueries(const std::vector<RangeQuery>& queries,
                       std::size_t domain_size);

/// Evaluates every query against `histogram`. Fails if any query is out of
/// bounds.
Result<std::vector<double>> AnswerQueries(
    const Histogram& histogram, const std::vector<RangeQuery>& queries);

}  // namespace dphist

#endif  // DPHIST_QUERY_RANGE_QUERY_H_
