#include "dphist/obs/obs.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <utility>

namespace dphist {
namespace obs {

namespace internal {
std::atomic<bool> g_enabled{std::getenv("DPHIST_OBS_OUT") != nullptr &&
                            *std::getenv("DPHIST_OBS_OUT") != '\0'};
}  // namespace internal

// ---------------------------------------------------------------------------
// P2Quantile

void P2Quantile::Add(double x) {
  if (count_ < 5) {
    heights_[count_++] = x;
    if (count_ == 5) {
      std::sort(heights_, heights_ + 5);
      for (int i = 0; i < 5; ++i) {
        positions_[i] = i + 1;
      }
      desired_[0] = 1.0;
      desired_[1] = 1.0 + 2.0 * quantile_;
      desired_[2] = 1.0 + 4.0 * quantile_;
      desired_[3] = 3.0 + 2.0 * quantile_;
      desired_[4] = 5.0;
      increments_[0] = 0.0;
      increments_[1] = quantile_ / 2.0;
      increments_[2] = quantile_;
      increments_[3] = (1.0 + quantile_) / 2.0;
      increments_[4] = 1.0;
    }
    return;
  }

  // Locate the cell containing x, extending the extreme markers if needed.
  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) {
      ++k;
    }
  }
  for (int i = k + 1; i < 5; ++i) {
    positions_[i] += 1.0;
  }
  for (int i = 0; i < 5; ++i) {
    desired_[i] += increments_[i];
  }

  // Adjust the three interior markers toward their desired positions using
  // the piecewise-parabolic (P^2) prediction, falling back to linear when
  // the parabola would leave the bracketing heights.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double gap_next = positions_[i + 1] - positions_[i];
    const double gap_prev = positions_[i - 1] - positions_[i];
    if ((d >= 1.0 && gap_next > 1.0) || (d <= -1.0 && gap_prev < -1.0)) {
      const double sign = d >= 0.0 ? 1.0 : -1.0;
      const double span = positions_[i + 1] - positions_[i - 1];
      const double parabolic =
          heights_[i] +
          sign / span *
              ((positions_[i] - positions_[i - 1] + sign) *
                   (heights_[i + 1] - heights_[i]) / gap_next +
               (positions_[i + 1] - positions_[i] - sign) *
                   (heights_[i] - heights_[i - 1]) /
                   (positions_[i] - positions_[i - 1]));
      if (heights_[i - 1] < parabolic && parabolic < heights_[i + 1]) {
        heights_[i] = parabolic;
      } else {
        const int j = sign > 0.0 ? i + 1 : i - 1;
        heights_[i] += sign * (heights_[j] - heights_[i]) /
                       (positions_[j] - positions_[i]);
      }
      positions_[i] += sign;
    }
  }
}

double P2Quantile::Estimate() const {
  if (count_ == 0) {
    return 0.0;
  }
  if (count_ < 5) {
    // Exact quantile of the buffered samples (nearest-rank on a copy).
    double sorted[5];
    std::copy(heights_, heights_ + count_, sorted);
    std::sort(sorted, sorted + count_);
    const double rank = quantile_ * static_cast<double>(count_ - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, count_ - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
  }
  return heights_[2];
}

// ---------------------------------------------------------------------------
// Distribution

Distribution::Distribution(std::string name)
    : name_(std::move(name)), p50_(0.5), p95_(0.95) {}

void Distribution::Record(double value) {
  if (!Enabled()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  p50_.Add(value);
  p95_.Add(value);
}

DistributionSnapshot Distribution::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  DistributionSnapshot snapshot;
  snapshot.name = name_;
  snapshot.count = count_;
  if (count_ > 0) {
    snapshot.min = min_;
    snapshot.max = max_;
    snapshot.mean = sum_ / static_cast<double>(count_);
    snapshot.p50 = p50_.Estimate();
    snapshot.p95 = p95_.Estimate();
  }
  return snapshot;
}

void Distribution::ResetForTest() {
  std::lock_guard<std::mutex> lock(mutex_);
  count_ = 0;
  min_ = 0.0;
  max_ = 0.0;
  sum_ = 0.0;
  p50_ = P2Quantile(0.5);
  p95_ = P2Quantile(0.95);
}

// ---------------------------------------------------------------------------
// Registry

Registry::Registry() = default;

Registry& Registry::Global() {
  // Leaked on purpose: instrumentation sites may record during static
  // destruction of other objects; the OS reclaims the registry.
  static Registry* registry = new Registry();
  return *registry;
}

Counter& Registry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name), std::unique_ptr<Counter>(new Counter(
                                             std::string(name))))
             .first;
  }
  return *it->second;
}

Distribution& Registry::GetDistribution(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = distributions_.find(name);
  if (it == distributions_.end()) {
    it = distributions_
             .emplace(std::string(name),
                      std::unique_ptr<Distribution>(
                          new Distribution(std::string(name))))
             .first;
  }
  return *it->second;
}

void Registry::set_enabled(bool enabled) {
  internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

RegistrySnapshot Registry::Snapshot() const {
  RegistrySnapshot snapshot;
  std::lock_guard<std::mutex> lock(mutex_);
  // std::map iterates in name order, so the snapshot is stable by
  // construction.
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->value());
  }
  snapshot.distributions.reserve(distributions_.size());
  for (const auto& [name, distribution] : distributions_) {
    snapshot.distributions.push_back(distribution->Snapshot());
  }
  return snapshot;
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) {
    counter->ResetForTest();
  }
  for (auto& [name, distribution] : distributions_) {
    distribution->ResetForTest();
  }
}

// ---------------------------------------------------------------------------
// ScopedTimer

namespace {
thread_local ScopedTimer* current_span = nullptr;
}  // namespace

ScopedTimer::ScopedTimer(std::string_view name) {
  if (!Enabled()) {
    return;
  }
  active_ = true;
  if (current_span != nullptr) {
    path_.reserve(current_span->path_.size() + 1 + name.size());
    path_ = current_span->path_;
    path_ += '/';
    path_ += name;
  } else {
    path_ = std::string(name);
  }
  parent_ = current_span;
  current_span = this;
  start_ = std::chrono::steady_clock::now();
}

ScopedTimer::~ScopedTimer() {
  if (!active_) {
    return;
  }
  const double ms = elapsed_ms();
  current_span = parent_;
  Registry::Global().GetDistribution(path_).Record(ms);
}

double ScopedTimer::elapsed_ms() const {
  if (!active_) {
    return 0.0;
  }
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

// ---------------------------------------------------------------------------
// Draw counting

namespace {
thread_local Counter* attributed_laplace = nullptr;
thread_local Counter* attributed_geometric = nullptr;
}  // namespace

DrawAttributionScope::DrawAttributionScope(Counter* laplace,
                                           Counter* geometric)
    : previous_laplace_(attributed_laplace),
      previous_geometric_(attributed_geometric) {
  attributed_laplace = laplace;
  attributed_geometric = geometric;
}

DrawAttributionScope::~DrawAttributionScope() {
  attributed_laplace = previous_laplace_;
  attributed_geometric = previous_geometric_;
}

void CountLaplaceDraws(std::uint64_t n) {
  if (!Enabled()) {
    return;
  }
  // Resolved once: draw counting runs per sample, so even the enabled path
  // must avoid the registry map lookup.
  static Counter& global = Registry::Global().GetCounter("rng/laplace_draws");
  global.Add(n);
  if (attributed_laplace != nullptr) {
    attributed_laplace->Add(n);
  }
}

void CountGeometricDraws(std::uint64_t n) {
  if (!Enabled()) {
    return;
  }
  static Counter& global =
      Registry::Global().GetCounter("rng/geometric_draws");
  global.Add(n);
  if (attributed_geometric != nullptr) {
    attributed_geometric->Add(n);
  }
}

}  // namespace obs
}  // namespace dphist
