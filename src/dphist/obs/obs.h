#ifndef DPHIST_OBS_OBS_H_
#define DPHIST_OBS_OBS_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace dphist {
namespace obs {

/// \brief Lightweight process-wide observability: named monotonic counters,
/// streaming value distributions, and RAII timer spans, all registered in
/// `Registry::Global()` and exportable as stable JSON lines (see export.h).
///
/// Design constraints (enforced by obs_test and the bench overhead budget):
///  * **Branch-cheap when disabled.** Every recording call first reads one
///    process-global relaxed atomic flag and returns immediately when obs is
///    off, so instrumented hot paths cost a predictable branch. The flag
///    defaults to "on" only when `DPHIST_OBS_OUT` is set; tests flip it with
///    `Registry::set_enabled`.
///  * **Thread-safe, allocation-free recording.** `Counter::Add` is one
///    relaxed atomic add; `Distribution::Record` takes a per-distribution
///    mutex but keeps O(1) state (streaming P-square quantile markers, no
///    sample buffer). Instrumentation sites record at coarse granularity
///    (per publication, per DP solve, per pool batch), never per element.
///  * **Deterministic where the computation is.** Counters that track work
///    done (draws consumed, DP cells filled, publications run) are a pure
///    function of the workload, bit-identical across `DPHIST_THREADS`
///    settings; only `threadpool/*` metrics and wall-time distributions may
///    depend on scheduling (asserted by parallel_experiment_test).

namespace internal {
/// The process-global recording flag, initialized at static-init time to
/// whether `DPHIST_OBS_OUT` is set. Exposed so `Enabled()` inlines into
/// instrumentation sites; flip it through `Registry::set_enabled`.
extern std::atomic<bool> g_enabled;
}  // namespace internal

/// True when recording is enabled (one relaxed atomic load).
inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

/// \brief A named monotonic counter. Obtain via `Registry::GetCounter`;
/// references stay valid for the process lifetime.
class Counter {
 public:
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  /// Adds `delta` when obs is enabled; no-op (one branch) otherwise.
  void Add(std::uint64_t delta) {
    if (!Enabled()) {
      return;
    }
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Add(1).
  void Increment() { Add(1); }

  /// Current value (relaxed read).
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  explicit Counter(std::string name) : name_(std::move(name)) {}

  void ResetForTest() { value_.store(0, std::memory_order_relaxed); }

  std::string name_;
  std::atomic<std::uint64_t> value_{0};
};

/// \brief Point-in-time summary of a Distribution. All statistics are 0
/// when `count == 0`. Quantiles are P-square streaming estimates (exact for
/// the first five samples, within a few percent beyond that).
struct DistributionSnapshot {
  std::string name;
  std::uint64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
};

/// \brief Streaming P-square estimator for a single quantile (Jain &
/// Chlamtac 1985): five markers updated in O(1) per observation, exact
/// until five samples have arrived.
class P2Quantile {
 public:
  explicit P2Quantile(double quantile) : quantile_(quantile) {}

  void Add(double x);
  /// Current estimate; 0 before the first sample.
  double Estimate() const;

 private:
  double quantile_;
  std::size_t count_ = 0;
  double heights_[5] = {0, 0, 0, 0, 0};
  double positions_[5] = {1, 2, 3, 4, 5};
  double desired_[5] = {0, 0, 0, 0, 0};
  double increments_[5] = {0, 0, 0, 0, 0};
};

/// \brief A named value distribution with O(1) streaming state: count, min,
/// max, mean, and P-square p50/p95. Obtain via `Registry::GetDistribution`.
class Distribution {
 public:
  Distribution(const Distribution&) = delete;
  Distribution& operator=(const Distribution&) = delete;

  /// Records one observation when obs is enabled; no-op otherwise.
  void Record(double value);

  DistributionSnapshot Snapshot() const;

  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  explicit Distribution(std::string name);

  void ResetForTest();

  std::string name_;
  mutable std::mutex mutex_;
  std::uint64_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
  P2Quantile p50_;
  P2Quantile p95_;
};

/// \brief Stable, name-sorted snapshot of every registered counter and
/// distribution. Two snapshots taken with no interleaved recording are
/// identical (obs_test's stability contract).
struct RegistrySnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<DistributionSnapshot> distributions;
};

/// \brief Process-global registry of counters and distributions. Lookup is
/// mutex-protected; returned references are stable for the process
/// lifetime (node-based storage, never erased).
class Registry {
 public:
  /// The process-wide registry (leaked singleton, like ThreadPool::Global).
  /// On first use, enables recording iff `DPHIST_OBS_OUT` is set.
  static Registry& Global();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Returns the counter registered under `name`, creating it on first use.
  Counter& GetCounter(std::string_view name);

  /// Returns the distribution registered under `name`, creating it on
  /// first use.
  Distribution& GetDistribution(std::string_view name);

  /// Flips the process-global recording flag (tests; benches inherit the
  /// DPHIST_OBS_OUT default).
  void set_enabled(bool enabled);

  /// Name-sorted snapshot of all counters and distributions.
  RegistrySnapshot Snapshot() const;

  /// Zeroes every counter and clears every distribution. Call only while
  /// no other thread is recording (tests between measured runs).
  void Reset();

 private:
  Registry();

  mutable std::mutex mutex_;
  // Pointer values: Counter/Distribution are pinned (atomic / mutex
  // members), and handed-out references must survive future insertions.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Distribution>, std::less<>>
      distributions_;
};

/// \brief RAII wall-time span. On destruction, records the elapsed
/// milliseconds into the distribution named by the span's slash-joined
/// path: a ScopedTimer constructed while another is live on the same
/// thread becomes its child, so `ScopedTimer("solve")` inside
/// `ScopedTimer("publish")` records into `"publish/solve"`. Inactive (one
/// branch, no clock read) when obs is disabled at construction.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string_view name);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Milliseconds since construction; 0 when the timer is inactive.
  double elapsed_ms() const;

  /// The slash-joined path this span records under (empty when inactive).
  const std::string& path() const { return path_; }

 private:
  bool active_ = false;
  std::string path_;
  ScopedTimer* parent_ = nullptr;
  std::chrono::steady_clock::time_point start_;
};

/// \brief Adds mechanism-level noise draws into per-publisher counters for
/// the duration of a scope, on top of the global `rng/laplace_draws` /
/// `rng/geometric_draws` counters. Installed by the registry's publisher
/// decorator around each `Publish` call; thread-local, so concurrent
/// repetitions attribute their own draws correctly (draws happen on the
/// thread running the publication — samplers are never parallelized).
class DrawAttributionScope {
 public:
  DrawAttributionScope(Counter* laplace, Counter* geometric);
  ~DrawAttributionScope();

  DrawAttributionScope(const DrawAttributionScope&) = delete;
  DrawAttributionScope& operator=(const DrawAttributionScope&) = delete;

 private:
  Counter* previous_laplace_;
  Counter* previous_geometric_;
};

/// Records `n` Laplace draws: bumps the global counter and, when a
/// DrawAttributionScope is live on this thread, its per-publisher counter.
/// Called by the samplers in random/distributions.cc.
void CountLaplaceDraws(std::uint64_t n);

/// Same for two-sided-geometric draws.
void CountGeometricDraws(std::uint64_t n);

}  // namespace obs
}  // namespace dphist

#endif  // DPHIST_OBS_OBS_H_
