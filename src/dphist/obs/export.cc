#include "dphist/obs/export.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <system_error>

namespace dphist {
namespace obs {

// ---------------------------------------------------------------------------
// Writing

std::string JsonEscape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonDouble(double value) {
  if (!std::isfinite(value)) {
    return "null";
  }
  // std::to_chars, not snprintf("%.17g"): printf honors the process locale,
  // so under a comma-decimal locale (de_DE) the emitted "0,5" is not JSON
  // and the bench-regression gate would compare garbage. to_chars is
  // specified to format as if in the C locale, and general/17 matches the
  // historical %.17g output byte for byte.
  char buffer[32];
  const auto [ptr, ec] = std::to_chars(buffer, buffer + sizeof(buffer), value,
                                       std::chars_format::general, 17);
  if (ec != std::errc{}) {
    return "null";
  }
  return std::string(buffer, ptr);
}

void JsonObjectWriter::Key(std::string_view key) {
  if (!body_.empty()) {
    body_ += ',';
  }
  body_ += '"';
  body_ += JsonEscape(key);
  body_ += "\":";
}

JsonObjectWriter& JsonObjectWriter::Str(std::string_view key,
                                        std::string_view value) {
  Key(key);
  body_ += '"';
  body_ += JsonEscape(value);
  body_ += '"';
  return *this;
}

JsonObjectWriter& JsonObjectWriter::Num(std::string_view key, double value) {
  Key(key);
  body_ += JsonDouble(value);
  return *this;
}

JsonObjectWriter& JsonObjectWriter::Int(std::string_view key,
                                        std::uint64_t value) {
  Key(key);
  body_ += std::to_string(value);
  return *this;
}

JsonObjectWriter& JsonObjectWriter::Bool(std::string_view key, bool value) {
  Key(key);
  body_ += value ? "true" : "false";
  return *this;
}

std::string JsonObjectWriter::Finish() const { return "{" + body_ + "}"; }

// ---------------------------------------------------------------------------
// Parsing

namespace {

void SkipSpace(std::string_view line, std::size_t& pos) {
  while (pos < line.size() &&
         std::isspace(static_cast<unsigned char>(line[pos])) != 0) {
    ++pos;
  }
}

Status ParseError(std::string_view what, std::size_t pos) {
  return Status::InvalidArgument("ParseFlatJson: " + std::string(what) +
                                 " at offset " + std::to_string(pos));
}

Result<std::string> ParseString(std::string_view line, std::size_t& pos) {
  if (pos >= line.size() || line[pos] != '"') {
    return ParseError("expected '\"'", pos);
  }
  ++pos;
  std::string out;
  while (pos < line.size() && line[pos] != '"') {
    char c = line[pos];
    if (c == '\\') {
      if (pos + 1 >= line.size()) {
        return ParseError("dangling escape", pos);
      }
      ++pos;
      switch (line[pos]) {
        case '"':
          c = '"';
          break;
        case '\\':
          c = '\\';
          break;
        case '/':
          c = '/';
          break;
        case 'n':
          c = '\n';
          break;
        case 't':
          c = '\t';
          break;
        case 'r':
          c = '\r';
          break;
        case 'u': {
          if (pos + 4 >= line.size()) {
            return ParseError("truncated \\u escape", pos);
          }
          unsigned code = 0;
          for (int i = 1; i <= 4; ++i) {
            const char h = line[pos + i];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return ParseError("bad \\u digit", pos + i);
            }
          }
          pos += 4;
          if (code > 0x7f) {
            return ParseError("non-ASCII \\u escape unsupported", pos);
          }
          c = static_cast<char>(code);
          break;
        }
        default:
          return ParseError("unknown escape", pos);
      }
    }
    out += c;
    ++pos;
  }
  if (pos >= line.size()) {
    return ParseError("unterminated string", pos);
  }
  ++pos;  // closing quote
  return out;
}

Result<JsonValue> ParseValue(std::string_view line, std::size_t& pos) {
  SkipSpace(line, pos);
  if (pos >= line.size()) {
    return ParseError("expected value", pos);
  }
  JsonValue value;
  const char c = line[pos];
  if (c == '"') {
    auto text = ParseString(line, pos);
    if (!text.ok()) {
      return text.status();
    }
    value.kind = JsonValue::Kind::kString;
    value.string_value = std::move(text).value();
    return value;
  }
  if (line.substr(pos, 4) == "true") {
    pos += 4;
    value.kind = JsonValue::Kind::kBool;
    value.bool_value = true;
    return value;
  }
  if (line.substr(pos, 5) == "false") {
    pos += 5;
    value.kind = JsonValue::Kind::kBool;
    value.bool_value = false;
    return value;
  }
  if (line.substr(pos, 4) == "null") {
    pos += 4;
    value.kind = JsonValue::Kind::kNull;
    return value;
  }
  const std::size_t start = pos;
  while (pos < line.size() &&
         (std::isdigit(static_cast<unsigned char>(line[pos])) != 0 ||
          line[pos] == '-' || line[pos] == '+' || line[pos] == '.' ||
          line[pos] == 'e' || line[pos] == 'E')) {
    ++pos;
  }
  if (pos == start) {
    return ParseError("expected value", pos);
  }
  // std::from_chars, not strtod: strtod is locale-dependent, and under a
  // comma-decimal locale it would stop at the '.' in "0.5" and mis-parse
  // bench-JSON round-trips. from_chars always uses the C-locale grammar.
  const std::string_view token = line.substr(start, pos - start);
  double parsed = 0.0;
  const auto [end, ec] =
      std::from_chars(token.data(), token.data() + token.size(), parsed);
  if (ec != std::errc{} || end != token.data() + token.size()) {
    return ParseError("bad number", start);
  }
  value.kind = JsonValue::Kind::kNumber;
  value.number_value = parsed;
  return value;
}

}  // namespace

Result<JsonObject> ParseFlatJson(std::string_view line) {
  std::size_t pos = 0;
  SkipSpace(line, pos);
  if (pos >= line.size() || line[pos] != '{') {
    return ParseError("expected '{'", pos);
  }
  ++pos;
  JsonObject object;
  SkipSpace(line, pos);
  if (pos < line.size() && line[pos] == '}') {
    ++pos;
  } else {
    for (;;) {
      SkipSpace(line, pos);
      auto key = ParseString(line, pos);
      if (!key.ok()) {
        return key.status();
      }
      SkipSpace(line, pos);
      if (pos >= line.size() || line[pos] != ':') {
        return ParseError("expected ':'", pos);
      }
      ++pos;
      auto value = ParseValue(line, pos);
      if (!value.ok()) {
        return value.status();
      }
      object[std::move(key).value()] = std::move(value).value();
      SkipSpace(line, pos);
      if (pos >= line.size()) {
        return ParseError("unterminated object", pos);
      }
      if (line[pos] == ',') {
        ++pos;
        continue;
      }
      if (line[pos] == '}') {
        ++pos;
        break;
      }
      return ParseError("expected ',' or '}'", pos);
    }
  }
  SkipSpace(line, pos);
  if (pos != line.size()) {
    return ParseError("trailing characters", pos);
  }
  return object;
}

// ---------------------------------------------------------------------------
// Snapshot export

void WriteSnapshotLines(std::ostream& os, const RegistrySnapshot& snapshot,
                        std::string_view context) {
  for (const auto& [name, value] : snapshot.counters) {
    JsonObjectWriter line;
    line.Str("type", "counter");
    if (!context.empty()) {
      line.Str("bench", context);
    }
    line.Str("name", name).Int("value", value);
    os << line.Finish() << '\n';
  }
  for (const DistributionSnapshot& dist : snapshot.distributions) {
    JsonObjectWriter line;
    line.Str("type", "distribution");
    if (!context.empty()) {
      line.Str("bench", context);
    }
    line.Str("name", dist.name)
        .Int("count", dist.count)
        .Num("min", dist.min)
        .Num("max", dist.max)
        .Num("mean", dist.mean)
        .Num("p50", dist.p50)
        .Num("p95", dist.p95);
    os << line.Finish() << '\n';
  }
}

std::size_t ExportToEnv(std::string_view context) {
  const char* path = std::getenv("DPHIST_OBS_OUT");
  if (path == nullptr || *path == '\0') {
    return 0;
  }
  const RegistrySnapshot snapshot = Registry::Global().Snapshot();
  const std::size_t lines =
      snapshot.counters.size() + snapshot.distributions.size();
  if (std::string_view(path) == "-") {
    WriteSnapshotLines(std::cout, snapshot, context);
    return lines;
  }
  std::ofstream out(path, std::ios::app);
  if (!out) {
    std::fprintf(stderr, "obs: cannot open DPHIST_OBS_OUT=%s\n", path);
    return 0;
  }
  WriteSnapshotLines(out, snapshot, context);
  return lines;
}

}  // namespace obs
}  // namespace dphist
