#ifndef DPHIST_OBS_EXPORT_H_
#define DPHIST_OBS_EXPORT_H_

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>

#include "dphist/common/result.h"
#include "dphist/obs/obs.h"

namespace dphist {
namespace obs {

/// \brief Incremental builder for one flat JSON object (one JSON line).
///
/// This is the single definition of the JSON-lines schema shared by the
/// obs snapshot exporter and the bench harnesses' `BenchJsonWriter`:
/// every emitted line is one flat object of string / number / boolean
/// fields, doubles printed with round-trip precision (%.17g), non-finite
/// doubles as null. Keys are emitted in insertion order.
class JsonObjectWriter {
 public:
  JsonObjectWriter& Str(std::string_view key, std::string_view value);
  JsonObjectWriter& Num(std::string_view key, double value);
  JsonObjectWriter& Int(std::string_view key, std::uint64_t value);
  JsonObjectWriter& Bool(std::string_view key, bool value);

  /// The finished `{...}` line (no trailing newline). The builder stays
  /// usable; later fields extend the object.
  std::string Finish() const;

 private:
  void Key(std::string_view key);

  std::string body_;
};

/// Escapes `raw` for inclusion inside a JSON string literal.
std::string JsonEscape(std::string_view raw);

/// Formats a double for JSON with round-trip precision; "null" for
/// non-finite values.
std::string JsonDouble(double value);

/// \brief One decoded value of a flat JSON object.
struct JsonValue {
  enum class Kind { kString, kNumber, kBool, kNull };
  Kind kind = Kind::kNull;
  std::string string_value;  ///< set when kind == kString
  double number_value = 0.0;  ///< set when kind == kNumber
  bool bool_value = false;    ///< set when kind == kBool
};

/// Parsed flat JSON object: key -> value, in key-sorted order.
using JsonObject = std::map<std::string, JsonValue>;

/// \brief Parses one flat JSON object line (as produced by
/// JsonObjectWriter): string / number / true / false / null values only —
/// no nesting. The bench harnesses read their own output back through
/// this (bench_scalability's determinism check), so writer and reader
/// cannot drift apart. Fails with InvalidArgument on malformed input.
Result<JsonObject> ParseFlatJson(std::string_view line);

/// Writes one JSON line per counter and per distribution of `snapshot` to
/// `os`, name-sorted (the snapshot is already sorted). Each line carries
/// `"type"` ("counter" | "distribution"), the metric `"name"`, and, when
/// `context` is non-empty, a `"bench"` field identifying the producer.
void WriteSnapshotLines(std::ostream& os, const RegistrySnapshot& snapshot,
                        std::string_view context);

/// Snapshots `Registry::Global()` and appends the JSON lines to the file
/// named by `DPHIST_OBS_OUT` ("-" means stdout). No-op when the variable
/// is unset or empty. Returns the number of lines written.
std::size_t ExportToEnv(std::string_view context);

}  // namespace obs
}  // namespace dphist

#endif  // DPHIST_OBS_EXPORT_H_
