#ifndef DPHIST_PRIVACY_LAPLACE_MECHANISM_H_
#define DPHIST_PRIVACY_LAPLACE_MECHANISM_H_

#include <vector>

#include "dphist/common/result.h"
#include "dphist/common/status.h"
#include "dphist/random/rng.h"

namespace dphist {

/// \brief The Laplace mechanism of Dwork, McSherry, Nissim & Smith (TCC'06).
///
/// For a query `f` with L1 sensitivity `Delta`, releasing
/// `f(D) + Lap(Delta/epsilon)` satisfies epsilon-differential privacy.
/// This class validates its parameters once at construction and then offers
/// scalar and vector perturbation.
class LaplaceMechanism {
 public:
  /// Creates a mechanism for the given budget and sensitivity.
  /// Returns InvalidArgument unless epsilon > 0 and sensitivity > 0.
  static Result<LaplaceMechanism> Create(double epsilon, double sensitivity);

  /// The privacy budget epsilon.
  double epsilon() const { return epsilon_; }
  /// The L1 sensitivity the mechanism was calibrated for.
  double sensitivity() const { return sensitivity_; }
  /// The Laplace scale parameter b = sensitivity / epsilon.
  double scale() const { return sensitivity_ / epsilon_; }
  /// The noise variance 2 b^2 of each released coordinate.
  double noise_variance() const { return 2.0 * scale() * scale(); }

  /// Returns `value + Lap(scale())`.
  double Perturb(double value, Rng& rng) const;

  /// Returns the element-wise perturbation of `values`.
  ///
  /// NOTE: this is epsilon-DP only when `values` as a whole has L1
  /// sensitivity `sensitivity()` — e.g. a histogram's unit-bin counts, where
  /// one record changes a single coordinate by 1 (parallel composition over
  /// disjoint bins).
  std::vector<double> PerturbVector(const std::vector<double>& values,
                                    Rng& rng) const;

 private:
  LaplaceMechanism(double epsilon, double sensitivity)
      : epsilon_(epsilon), sensitivity_(sensitivity) {}

  double epsilon_;
  double sensitivity_;
};

}  // namespace dphist

#endif  // DPHIST_PRIVACY_LAPLACE_MECHANISM_H_
