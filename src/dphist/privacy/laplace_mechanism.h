#ifndef DPHIST_PRIVACY_LAPLACE_MECHANISM_H_
#define DPHIST_PRIVACY_LAPLACE_MECHANISM_H_

#include <vector>

#include "dphist/common/result.h"
#include "dphist/common/status.h"
#include "dphist/random/noise_batch.h"
#include "dphist/random/rng.h"

namespace dphist {

/// \brief The Laplace mechanism of Dwork, McSherry, Nissim & Smith (TCC'06).
///
/// For a query `f` with L1 sensitivity `Delta`, releasing
/// `f(D) + Lap(Delta/epsilon)` satisfies epsilon-differential privacy.
/// This class validates its parameters once at construction and then offers
/// scalar and vector perturbation.
///
/// The sampling construction is selected by a NoiseModel (DESIGN §10):
/// the default resolves DPHIST_NOISE_MODEL and falls back to the textbook
/// scalar sampler, which reproduces the historical draw sequence
/// bit-for-bit. kAuto is resolved once at Create, so one mechanism's calls
/// are always mutually consistent even if the environment changes.
class LaplaceMechanism {
 public:
  /// Creates a mechanism for the given budget and sensitivity.
  /// Returns InvalidArgument unless epsilon > 0 and sensitivity > 0.
  static Result<LaplaceMechanism> Create(double epsilon, double sensitivity);

  /// As above with an explicit noise model; kAuto consults the
  /// DPHIST_NOISE_MODEL environment variable (an explicit model wins).
  static Result<LaplaceMechanism> Create(double epsilon, double sensitivity,
                                         NoiseModel model);

  /// The privacy budget epsilon.
  double epsilon() const { return epsilon_; }
  /// The L1 sensitivity the mechanism was calibrated for.
  double sensitivity() const { return sensitivity_; }
  /// The Laplace scale parameter b = sensitivity / epsilon.
  double scale() const { return sensitivity_ / epsilon_; }
  /// The noise variance 2 b^2 of each released coordinate.
  double noise_variance() const { return 2.0 * scale() * scale(); }
  /// The resolved sampling construction (never kAuto).
  NoiseModel noise_model() const { return model_; }

  /// Returns `value + Lap(scale())` (model-dependent construction).
  double Perturb(double value, Rng& rng) const;

  /// Returns the element-wise perturbation of `values`.
  ///
  /// NOTE: this is epsilon-DP only when `values` as a whole has L1
  /// sensitivity `sensitivity()` — e.g. a histogram's unit-bin counts, where
  /// one record changes a single coordinate by 1 (parallel composition over
  /// disjoint bins).
  std::vector<double> PerturbVector(const std::vector<double>& values,
                                    Rng& rng) const;

 private:
  LaplaceMechanism(double epsilon, double sensitivity, NoiseModel model)
      : epsilon_(epsilon), sensitivity_(sensitivity), model_(model) {}

  double epsilon_;
  double sensitivity_;
  NoiseModel model_;
};

}  // namespace dphist

#endif  // DPHIST_PRIVACY_LAPLACE_MECHANISM_H_
