#ifndef DPHIST_PRIVACY_GEOMETRIC_MECHANISM_H_
#define DPHIST_PRIVACY_GEOMETRIC_MECHANISM_H_

#include <cstdint>
#include <vector>

#include "dphist/common/result.h"
#include "dphist/common/status.h"
#include "dphist/random/noise_batch.h"
#include "dphist/random/rng.h"

namespace dphist {

/// \brief The geometric (discrete Laplace) mechanism of Ghosh, Roughgarden &
/// Sundararajan (STOC'09).
///
/// For an integer-valued query with sensitivity `Delta` (an integer), adding
/// two-sided geometric noise with alpha = exp(-epsilon/Delta) satisfies
/// epsilon-DP and is universally utility-maximizing for count queries. It is
/// the integer-valued, floating-point-side-channel-free alternative to the
/// Laplace mechanism, useful when published histogram counts must remain
/// integers.
///
/// The NoiseModel (DESIGN §10) selects the sampling construction:
/// kTextbook (the resolved default) is the historical scalar sampler,
/// bit-identical to prior releases; every other model uses the exact
/// batched CDF-inversion kernel (integer noise is already discrete, so
/// kBatched/kSnapped/kDiscrete coincide here).
class GeometricMechanism {
 public:
  /// Creates a mechanism; requires epsilon > 0 and sensitivity >= 1.
  static Result<GeometricMechanism> Create(double epsilon,
                                           std::int64_t sensitivity);

  /// As above with an explicit noise model; kAuto consults the
  /// DPHIST_NOISE_MODEL environment variable (an explicit model wins).
  static Result<GeometricMechanism> Create(double epsilon,
                                           std::int64_t sensitivity,
                                           NoiseModel model);

  /// The privacy budget epsilon.
  double epsilon() const { return epsilon_; }
  /// The integer L1 sensitivity.
  std::int64_t sensitivity() const { return sensitivity_; }
  /// alpha = exp(-epsilon/sensitivity), the geometric decay rate.
  double alpha() const { return alpha_; }
  /// Noise variance 2*alpha / (1-alpha)^2.
  double noise_variance() const;
  /// The resolved sampling construction (never kAuto).
  NoiseModel noise_model() const { return model_; }

  /// Returns `value + TwoSidedGeometric(alpha())`.
  std::int64_t Perturb(std::int64_t value, Rng& rng) const;

  /// Element-wise perturbation; the same parallel-composition caveat as
  /// LaplaceMechanism::PerturbVector applies.
  std::vector<std::int64_t> PerturbVector(
      const std::vector<std::int64_t>& values, Rng& rng) const;

 private:
  GeometricMechanism(double epsilon, std::int64_t sensitivity, double alpha,
                     NoiseModel model)
      : epsilon_(epsilon),
        sensitivity_(sensitivity),
        alpha_(alpha),
        model_(model) {}

  double epsilon_;
  std::int64_t sensitivity_;
  double alpha_;
  NoiseModel model_;
};

}  // namespace dphist

#endif  // DPHIST_PRIVACY_GEOMETRIC_MECHANISM_H_
