#include "dphist/privacy/exponential_mechanism.h"

#include <algorithm>
#include <cmath>

#include "dphist/random/distributions.h"

namespace dphist {

Result<ExponentialMechanism> ExponentialMechanism::Create(
    double epsilon, double utility_sensitivity) {
  if (!(epsilon > 0.0)) {
    return Status::InvalidArgument(
        "ExponentialMechanism requires epsilon > 0");
  }
  if (!(utility_sensitivity > 0.0)) {
    return Status::InvalidArgument(
        "ExponentialMechanism requires utility sensitivity > 0");
  }
  return ExponentialMechanism(epsilon, utility_sensitivity);
}

Result<std::size_t> ExponentialMechanism::Select(
    const std::vector<double>& utilities, Rng& rng) const {
  if (utilities.empty()) {
    return Status::InvalidArgument(
        "ExponentialMechanism::Select needs at least one candidate");
  }
  const double factor = epsilon_ / (2.0 * utility_sensitivity_);
  std::vector<double> log_weights;
  log_weights.reserve(utilities.size());
  for (double u : utilities) {
    log_weights.push_back(factor * u);
  }
  return SampleFromLogWeights(rng, log_weights);
}

Result<std::vector<double>> ExponentialMechanism::SelectionProbabilities(
    const std::vector<double>& utilities) const {
  if (utilities.empty()) {
    return Status::InvalidArgument(
        "ExponentialMechanism::SelectionProbabilities needs candidates");
  }
  const double factor = epsilon_ / (2.0 * utility_sensitivity_);
  const double max_utility =
      *std::max_element(utilities.begin(), utilities.end());
  std::vector<double> probabilities;
  probabilities.reserve(utilities.size());
  double normalizer = 0.0;
  for (double u : utilities) {
    const double w = std::exp(factor * (u - max_utility));
    probabilities.push_back(w);
    normalizer += w;
  }
  for (double& p : probabilities) {
    p /= normalizer;
  }
  return probabilities;
}

}  // namespace dphist
