#include "dphist/privacy/budget.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>

namespace dphist {

namespace {
// Tolerance for floating-point budget arithmetic: splitting epsilon into
// k equal parts and charging them back must not overshoot.
constexpr double kBudgetSlack = 1e-9;
}  // namespace

BudgetAccountant::BudgetAccountant(double total_epsilon)
    : total_epsilon_(total_epsilon > 0.0 ? total_epsilon : 0.0) {}

Status BudgetAccountant::ChargeSequential(double epsilon, std::string label) {
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("budget charge must have epsilon > 0");
  }
  if (spent_epsilon() + epsilon >
      total_epsilon_ * (1.0 + kBudgetSlack) + kBudgetSlack) {
    return Status::InvalidArgument("privacy budget exhausted: charge '" +
                                   label + "' exceeds remaining epsilon");
  }
  charges_.push_back(
      BudgetCharge{epsilon, std::move(label), /*parallel=*/false, ""});
  return Status::Ok();
}

Status BudgetAccountant::ChargeParallel(double epsilon, std::string group,
                                        std::string label) {
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("budget charge must have epsilon > 0");
  }
  // Compute what the new spend would be with this charge included.
  const double before = spent_epsilon();
  charges_.push_back(BudgetCharge{epsilon, std::move(label),
                                  /*parallel=*/true, std::move(group)});
  const double after = spent_epsilon();
  if (after > total_epsilon_ * (1.0 + kBudgetSlack) + kBudgetSlack) {
    charges_.pop_back();
    return Status::InvalidArgument(
        "privacy budget exhausted by parallel charge");
  }
  (void)before;
  return Status::Ok();
}

double BudgetAccountant::spent_epsilon() const {
  double sequential = 0.0;
  std::map<std::string, double> group_max;
  for (const BudgetCharge& charge : charges_) {
    if (charge.parallel) {
      double& current = group_max[charge.parallel_group];
      current = std::max(current, charge.epsilon);
    } else {
      sequential += charge.epsilon;
    }
  }
  for (const auto& [group, eps] : group_max) {
    sequential += eps;
  }
  return sequential;
}

double BudgetAccountant::remaining_epsilon() const {
  return std::max(0.0, total_epsilon_ - spent_epsilon());
}

std::string BudgetAccountant::ToString() const {
  std::ostringstream out;
  out << "BudgetAccountant(total=" << total_epsilon_
      << ", spent=" << spent_epsilon() << ")\n";
  for (const BudgetCharge& charge : charges_) {
    out << "  " << (charge.parallel ? "[parallel:" + charge.parallel_group + "] "
                                    : "[sequential] ")
        << charge.label << " eps=" << charge.epsilon << "\n";
  }
  return out.str();
}

}  // namespace dphist
