#include "dphist/privacy/budget.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "dphist/testing/failpoint.h"

namespace dphist {

namespace {
// Tolerance for floating-point budget arithmetic: splitting epsilon into
// k equal parts and charging them back must not overshoot.
constexpr double kBudgetSlack = 1e-9;
}  // namespace

BudgetAccountant::BudgetAccountant(double total_epsilon)
    : total_epsilon_(total_epsilon > 0.0 ? total_epsilon : 0.0) {}

BudgetAccountant::BudgetAccountant(double total_epsilon, double total_delta)
    : total_epsilon_(total_epsilon > 0.0 ? total_epsilon : 0.0),
      total_delta_(total_delta > 0.0 ? total_delta : 0.0) {}

Status BudgetAccountant::ChargeSequential(double epsilon, std::string label) {
  return ChargeSequential(epsilon, /*delta=*/0.0, std::move(label));
}

Status BudgetAccountant::ChargeSequential(double epsilon, double delta,
                                          std::string label) {
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("budget charge must have epsilon > 0");
  }
  if (delta < 0.0) {
    return Status::InvalidArgument("budget charge must have delta >= 0");
  }
  if (spent_epsilon() + epsilon >
      total_epsilon_ * (1.0 + kBudgetSlack) + kBudgetSlack) {
    return Status::ResourceExhausted("privacy budget exhausted: charge '" +
                                     label + "' exceeds remaining epsilon");
  }
  // The delta grant uses the same relative slack as epsilon. Deltas are
  // tiny (1e-9-ish), so the absolute kBudgetSlack term would dwarf the
  // grant itself; the delta check therefore uses relative slack only —
  // notably, any delta > 0 against total_delta_ == 0 is refused.
  if (delta > 0.0 &&
      spent_delta() + delta > total_delta_ * (1.0 + kBudgetSlack)) {
    return Status::ResourceExhausted("privacy budget exhausted: charge '" +
                                     label + "' exceeds remaining delta");
  }
  sequential_sum_.Add(epsilon);
  delta_sum_.Add(delta);
  charges_.push_back(
      BudgetCharge{epsilon, std::move(label), /*parallel=*/false, "", delta});
  // Chaos hook: a charge failing *after* its commit point. The epsilon is
  // already recorded as spent — the conservative direction: a failure here
  // must never un-spend budget, and the chaos suite asserts the ledger
  // still never overspends.
  DPHIST_FAILPOINT_RETURN_IF_SET("privacy/budget/after_commit");
  return Status::Ok();
}

Status BudgetAccountant::ChargeParallel(double epsilon, std::string group,
                                        std::string label) {
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("budget charge must have epsilon > 0");
  }
  // Tentatively raise the group's max, evaluate the prospective spend, and
  // roll the table back on refusal — the same accept/reject arithmetic as
  // recording the charge and recomputing from scratch, at O(groups) cost.
  const auto [it, inserted] = group_max_.try_emplace(group, 0.0);
  const double old_max = it->second;
  it->second = std::max(old_max, epsilon);
  const double after = spent_epsilon();
  if (after > total_epsilon_ * (1.0 + kBudgetSlack) + kBudgetSlack) {
    if (inserted) {
      group_max_.erase(it);
    } else {
      it->second = old_max;
    }
    return Status::ResourceExhausted(
        "privacy budget exhausted by parallel charge");
  }
  charges_.push_back(BudgetCharge{epsilon, std::move(label),
                                  /*parallel=*/true, std::move(group)});
  return Status::Ok();
}

double BudgetAccountant::spent_epsilon() const {
  // group_max_ iterates in key order, the same order the from-scratch
  // recomputation folds its per-group maxima in, so the compensated
  // operations (and therefore every accept/reject decision) are identical.
  // Compensation matters here: repeated naive additions of ε/N drift, and
  // the drift either refuses a final legitimate charge or leaves phantom
  // remaining budget after an exact spend-down.
  KahanSum spent = sequential_sum_;
  for (const auto& [group, eps] : group_max_) {
    spent.Add(eps);
  }
  return spent.Total();
}

double BudgetAccountant::remaining_epsilon() const {
  return std::max(0.0, total_epsilon_ - spent_epsilon());
}

double BudgetAccountant::remaining_delta() const {
  return std::max(0.0, total_delta_ - spent_delta());
}

std::string BudgetAccountant::ToString() const {
  std::ostringstream out;
  out << "BudgetAccountant(total=" << total_epsilon_
      << ", spent=" << spent_epsilon();
  if (total_delta_ > 0.0 || spent_delta() > 0.0) {
    out << ", total_delta=" << total_delta_
        << ", spent_delta=" << spent_delta();
  }
  out << ")\n";
  for (const BudgetCharge& charge : charges_) {
    out << "  " << (charge.parallel ? "[parallel:" + charge.parallel_group + "] "
                                    : "[sequential] ")
        << charge.label << " eps=" << charge.epsilon;
    if (charge.delta > 0.0) {
      out << " delta=" << charge.delta;
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace dphist
