#include "dphist/privacy/laplace_mechanism.h"

#include "dphist/random/distributions.h"

namespace dphist {

Result<LaplaceMechanism> LaplaceMechanism::Create(double epsilon,
                                                  double sensitivity) {
  return Create(epsilon, sensitivity, NoiseModel::kAuto);
}

Result<LaplaceMechanism> LaplaceMechanism::Create(double epsilon,
                                                  double sensitivity,
                                                  NoiseModel model) {
  if (!(epsilon > 0.0)) {
    return Status::InvalidArgument("LaplaceMechanism requires epsilon > 0");
  }
  if (!(sensitivity > 0.0)) {
    return Status::InvalidArgument(
        "LaplaceMechanism requires sensitivity > 0");
  }
  return LaplaceMechanism(epsilon, sensitivity, ResolveNoiseModel(model));
}

double LaplaceMechanism::Perturb(double value, Rng& rng) const {
  if (model_ == NoiseModel::kTextbook) {
    return value + SampleLaplace(rng, scale());
  }
  return noise_batch::AddContinuousNoiseScalar(model_, scale(), value, rng);
}

std::vector<double> LaplaceMechanism::PerturbVector(
    const std::vector<double>& values, Rng& rng) const {
  std::vector<double> out(values.size());
  noise_batch::AddContinuousNoise(model_, scale(), values.data(), out.data(),
                                  values.size(), rng);
  return out;
}

}  // namespace dphist
