#include "dphist/privacy/laplace_mechanism.h"

#include "dphist/random/distributions.h"

namespace dphist {

Result<LaplaceMechanism> LaplaceMechanism::Create(double epsilon,
                                                  double sensitivity) {
  if (!(epsilon > 0.0)) {
    return Status::InvalidArgument("LaplaceMechanism requires epsilon > 0");
  }
  if (!(sensitivity > 0.0)) {
    return Status::InvalidArgument(
        "LaplaceMechanism requires sensitivity > 0");
  }
  return LaplaceMechanism(epsilon, sensitivity);
}

double LaplaceMechanism::Perturb(double value, Rng& rng) const {
  return value + SampleLaplace(rng, scale());
}

std::vector<double> LaplaceMechanism::PerturbVector(
    const std::vector<double>& values, Rng& rng) const {
  std::vector<double> out;
  out.reserve(values.size());
  const double b = scale();
  for (double v : values) {
    out.push_back(v + SampleLaplace(rng, b));
  }
  return out;
}

}  // namespace dphist
