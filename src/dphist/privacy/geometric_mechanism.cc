#include "dphist/privacy/geometric_mechanism.h"

#include <cmath>

#include "dphist/random/distributions.h"

namespace dphist {

Result<GeometricMechanism> GeometricMechanism::Create(
    double epsilon, std::int64_t sensitivity) {
  return Create(epsilon, sensitivity, NoiseModel::kAuto);
}

Result<GeometricMechanism> GeometricMechanism::Create(
    double epsilon, std::int64_t sensitivity, NoiseModel model) {
  if (!(epsilon > 0.0)) {
    return Status::InvalidArgument("GeometricMechanism requires epsilon > 0");
  }
  if (sensitivity < 1) {
    return Status::InvalidArgument(
        "GeometricMechanism requires integer sensitivity >= 1");
  }
  const double alpha =
      std::exp(-epsilon / static_cast<double>(sensitivity));
  return GeometricMechanism(epsilon, sensitivity, alpha,
                            ResolveNoiseModel(model));
}

double GeometricMechanism::noise_variance() const {
  const double one_minus = 1.0 - alpha_;
  return 2.0 * alpha_ / (one_minus * one_minus);
}

std::int64_t GeometricMechanism::Perturb(std::int64_t value, Rng& rng) const {
  if (model_ == NoiseModel::kTextbook) {
    return value + SampleTwoSidedGeometric(rng, alpha_);
  }
  const double t = epsilon_ / static_cast<double>(sensitivity_);
  return noise_batch::AddIntegerNoiseScalar(model_, t, value, rng);
}

std::vector<std::int64_t> GeometricMechanism::PerturbVector(
    const std::vector<std::int64_t>& values, Rng& rng) const {
  std::vector<std::int64_t> out(values.size());
  const double t = epsilon_ / static_cast<double>(sensitivity_);
  noise_batch::AddIntegerNoise(model_, t, values.data(), out.data(),
                               values.size(), rng);
  return out;
}

}  // namespace dphist
