#ifndef DPHIST_PRIVACY_EXPONENTIAL_MECHANISM_H_
#define DPHIST_PRIVACY_EXPONENTIAL_MECHANISM_H_

#include <cstddef>
#include <vector>

#include "dphist/common/result.h"
#include "dphist/common/status.h"
#include "dphist/random/rng.h"

namespace dphist {

/// \brief The exponential mechanism of McSherry & Talwar (FOCS'07).
///
/// Given a finite candidate set with utility scores `u(D, r)` whose
/// per-record sensitivity is `Delta_u`, selecting candidate `r` with
/// probability proportional to `exp(epsilon * u(D, r) / (2 * Delta_u))`
/// satisfies epsilon-differential privacy.
///
/// StructureFirst uses this mechanism to sample each histogram-merge
/// boundary, with utility = negated merge cost (see
/// algorithms/structure_first.h for the sensitivity analysis of the cost).
class ExponentialMechanism {
 public:
  /// Creates a mechanism; requires epsilon > 0 and utility_sensitivity > 0.
  static Result<ExponentialMechanism> Create(double epsilon,
                                             double utility_sensitivity);

  /// The privacy budget epsilon.
  double epsilon() const { return epsilon_; }
  /// The utility sensitivity Delta_u.
  double utility_sensitivity() const { return utility_sensitivity_; }

  /// Selects an index into `utilities` with probability proportional to
  /// exp(epsilon * u / (2 * Delta_u)), via the Gumbel-max trick (numerically
  /// exact in distribution and immune to overflow from large utilities).
  /// Returns InvalidArgument for an empty candidate set.
  Result<std::size_t> Select(const std::vector<double>& utilities,
                             Rng& rng) const;

  /// Returns the exact selection probabilities (normalized, computed with a
  /// max-shift for numerical stability). Exposed so tests can verify the
  /// sampled distribution against the definition.
  Result<std::vector<double>> SelectionProbabilities(
      const std::vector<double>& utilities) const;

 private:
  ExponentialMechanism(double epsilon, double utility_sensitivity)
      : epsilon_(epsilon), utility_sensitivity_(utility_sensitivity) {}

  double epsilon_;
  double utility_sensitivity_;
};

}  // namespace dphist

#endif  // DPHIST_PRIVACY_EXPONENTIAL_MECHANISM_H_
