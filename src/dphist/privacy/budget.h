#ifndef DPHIST_PRIVACY_BUDGET_H_
#define DPHIST_PRIVACY_BUDGET_H_

#include <map>
#include <string>
#include <vector>

#include "dphist/common/math_util.h"
#include "dphist/common/status.h"

namespace dphist {

/// \brief A single recorded privacy charge.
struct BudgetCharge {
  /// Epsilon consumed by the charge.
  double epsilon = 0.0;
  /// Free-form label for auditing ("laplace:counts", "em:boundary 3", ...).
  std::string label;
  /// True if the charge was made under parallel composition (it still must
  /// not exceed the remaining budget, but parallel charges with the same
  /// group label share a single epsilon).
  bool parallel = false;
  /// Group key for parallel charges; ignored for sequential charges.
  std::string parallel_group;
  /// Delta consumed by the charge (approximate-DP mechanisms such as the
  /// unknown-domain sparse publisher). Deltas add up under sequential
  /// composition; pure-epsilon charges leave this at 0.
  double delta = 0.0;
};

/// \brief Tracks epsilon consumption under sequential and parallel
/// composition.
///
/// The accountant is an auditing device: the mechanisms themselves are
/// parameterized directly by epsilon, and algorithms use the accountant to
/// *prove* (in tests and examples) that their internal charges sum to the
/// epsilon the caller granted.
///
/// Sequential composition: charges add up. Parallel composition: charges in
/// the same group act on disjoint data partitions, so the group costs the
/// maximum of its members' epsilons rather than the sum (Theorem of McSherry,
/// "Privacy integrated queries").
///
/// Complexity: the spend is maintained incrementally (a running sequential
/// sum plus a per-group max table), so each charge and each
/// `spent_epsilon()` call costs O(number of parallel groups), not O(number
/// of charges) — a long-lived accountant (e.g. behind `serve::BudgetLedger`)
/// stays O(n) over n charges instead of O(n^2). The incremental totals
/// perform the identical floating-point operations, in the identical order,
/// as a from-scratch recomputation over `charges()`, so accept/reject
/// decisions are bit-for-bit unchanged (asserted by budget_test).
///
/// Numerics: the spend is accumulated with compensated (Kahan) summation
/// — the shared `KahanSum` — not plain `+=`. Naive accumulation drifts: a
/// budget funded for exactly N charges of ε/N could refuse the Nth
/// legitimate charge, or `remaining_epsilon()` could report a sliver of
/// phantom budget after the grant was exactly consumed (ten charges of 0.1
/// against 1.0 naively sum to 0.9999999999999999). With compensation the
/// running spend is the correctly-rounded sum, so "exactly spent" means
/// remaining == 0.0 (budget_test's ExactFractionalChargesConsumeExactly).
class BudgetAccountant {
 public:
  /// Creates an accountant with `total_epsilon` to spend and no delta
  /// budget: every approximate-DP charge (delta > 0) is refused.
  /// `total_epsilon` must be positive; a non-positive value is pinned to 0
  /// so every charge fails loudly.
  explicit BudgetAccountant(double total_epsilon);

  /// Creates an accountant granting `total_epsilon` and `total_delta` for
  /// (epsilon, delta)-DP mechanisms. Non-positive grants are pinned to 0.
  BudgetAccountant(double total_epsilon, double total_delta);

  /// Records a sequential charge of `epsilon` with `label`.
  /// Fails with InvalidArgument if epsilon <= 0, and with ResourceExhausted
  /// if the remaining budget is insufficient (up to a small floating-point
  /// tolerance).
  Status ChargeSequential(double epsilon, std::string label);

  /// Records a sequential (epsilon, delta) charge. Deltas compose
  /// additively alongside the epsilons. Fails with InvalidArgument if
  /// `delta` is negative, and with ResourceExhausted when the delta grant
  /// (see the two-argument constructor) cannot cover it — in particular,
  /// any delta > 0 against an accountant constructed without a delta grant.
  Status ChargeSequential(double epsilon, double delta, std::string label);

  /// Records a parallel charge of `epsilon` under `group`: all charges with
  /// the same group key count once at their maximum epsilon.
  Status ChargeParallel(double epsilon, std::string group, std::string label);

  /// Total epsilon granted at construction.
  double total_epsilon() const { return total_epsilon_; }

  /// Epsilon consumed so far (sequential sum + per-group maxima).
  double spent_epsilon() const;

  /// Remaining epsilon (never negative).
  double remaining_epsilon() const;

  /// Total delta granted at construction (0 for pure-epsilon accountants).
  double total_delta() const { return total_delta_; }

  /// Delta consumed so far (compensated sum over all charges).
  double spent_delta() const { return delta_sum_.Total(); }

  /// Remaining delta (never negative).
  double remaining_delta() const;

  /// All recorded charges, in order.
  const std::vector<BudgetCharge>& charges() const { return charges_; }

  /// Human-readable ledger for logs and examples.
  std::string ToString() const;

 private:
  double total_epsilon_;
  double total_delta_ = 0.0;
  std::vector<BudgetCharge> charges_;
  /// Compensated running sum of per-charge deltas (sequential composition
  /// of the deltas; parallel epsilon charges carry delta 0).
  KahanSum delta_sum_;
  /// Compensated running sum of sequential charges, in charge order
  /// (bit-identical to re-summing `charges_` the same way).
  KahanSum sequential_sum_;
  /// Max epsilon per parallel group; folded in key order into a copy of
  /// the compensated sum by `spent_epsilon()`, matching a from-scratch
  /// recomputation.
  std::map<std::string, double> group_max_;
};

}  // namespace dphist

#endif  // DPHIST_PRIVACY_BUDGET_H_
