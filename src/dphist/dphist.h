#ifndef DPHIST_DPHIST_H_
#define DPHIST_DPHIST_H_

/// \file
/// \brief Umbrella header: pulls in the whole public dphist API.
///
/// Most users only need a publisher, a histogram, and an Rng:
/// \code
///   #include "dphist/dphist.h"
///   dphist::Histogram truth({3, 1, 4, 1, 5});
///   dphist::Rng rng(42);
///   auto released = dphist::NoiseFirst().Publish(truth, 0.5, rng);
/// \endcode
/// Individual headers compile faster; include them directly in larger
/// projects.

#include "dphist/algorithms/ahp.h"
#include "dphist/algorithms/boost_tree.h"
#include "dphist/algorithms/efpa.h"
#include "dphist/algorithms/grouping_smoothing.h"
#include "dphist/algorithms/identity_geometric.h"
#include "dphist/algorithms/identity_laplace.h"
#include "dphist/algorithms/mwem.h"
#include "dphist/algorithms/noise_first.h"
#include "dphist/algorithms/p_hp.h"
#include "dphist/algorithms/postprocess.h"
#include "dphist/algorithms/privelet.h"
#include "dphist/algorithms/publisher.h"
#include "dphist/algorithms/registry.h"
#include "dphist/algorithms/structure_first.h"
#include "dphist/common/math_util.h"
#include "dphist/common/parallel_defaults.h"
#include "dphist/common/result.h"
#include "dphist/common/status.h"
#include "dphist/common/thread_pool.h"
#include "dphist/data/csv.h"
#include "dphist/data/dataset.h"
#include "dphist/data/generators.h"
#include "dphist/hist/bucketization.h"
#include "dphist/hist/fenwick.h"
#include "dphist/hist/histogram.h"
#include "dphist/hist/interval_cost.h"
#include "dphist/hist/vopt_dp.h"
#include "dphist/metrics/analytic.h"
#include "dphist/metrics/metrics.h"
#include "dphist/privacy/budget.h"
#include "dphist/privacy/exponential_mechanism.h"
#include "dphist/privacy/geometric_mechanism.h"
#include "dphist/privacy/laplace_mechanism.h"
#include "dphist/query/range_query.h"
#include "dphist/query/workload.h"
#include "dphist/random/distributions.h"
#include "dphist/random/rng.h"
#include "dphist/serve/budget_ledger.h"
#include "dphist/serve/release_cache.h"
#include "dphist/serve/release_server.h"
#include "dphist/transform/fourier.h"
#include "dphist/transform/haar_wavelet.h"
#include "dphist/transform/interval_tree.h"

#endif  // DPHIST_DPHIST_H_
