#include "dphist/transform/fourier.h"

#include <cmath>
#include <utility>

#include "dphist/common/math_util.h"

namespace dphist {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

// Iterative Cooley-Tukey with bit-reversal permutation.
// sign = -1 for forward, +1 for inverse (without normalization).
void FftInPlace(std::vector<std::complex<double>>& data, double sign) {
  const std::size_t n = data.size();
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) {
      j ^= bit;
    }
    j ^= bit;
    if (i < j) {
      std::swap(data[i], data[j]);
    }
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = sign * kTwoPi / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t j = 0; j < len / 2; ++j) {
        const std::complex<double> u = data[i + j];
        const std::complex<double> v = data[i + j + len / 2] * w;
        data[i + j] = u + v;
        data[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

}  // namespace

Status Fft::Forward(std::vector<std::complex<double>>& data) {
  if (!IsPowerOfTwo(data.size())) {
    return Status::InvalidArgument("Fft requires a power-of-two length");
  }
  FftInPlace(data, -1.0);
  return Status::Ok();
}

Status Fft::Inverse(std::vector<std::complex<double>>& data) {
  if (!IsPowerOfTwo(data.size())) {
    return Status::InvalidArgument("Fft requires a power-of-two length");
  }
  FftInPlace(data, 1.0);
  const double inv_n = 1.0 / static_cast<double>(data.size());
  for (std::complex<double>& v : data) {
    v *= inv_n;
  }
  return Status::Ok();
}

Result<std::vector<std::complex<double>>> Fft::ForwardReal(
    const std::vector<double>& x) {
  std::vector<std::complex<double>> data(x.begin(), x.end());
  DPHIST_RETURN_IF_ERROR(Forward(data));
  return data;
}

Result<std::vector<double>> Fft::InverseToReal(
    std::vector<std::complex<double>> spectrum) {
  DPHIST_RETURN_IF_ERROR(Inverse(spectrum));
  std::vector<double> out;
  out.reserve(spectrum.size());
  for (const std::complex<double>& v : spectrum) {
    out.push_back(v.real());
  }
  return out;
}

Result<std::vector<double>> Fft::ReconstructFromPrefix(
    const std::vector<std::complex<double>>& prefix, std::size_t n) {
  if (!IsPowerOfTwo(n)) {
    return Status::InvalidArgument("Fft requires a power-of-two length");
  }
  if (prefix.size() > n / 2 + 1) {
    return Status::InvalidArgument(
        "ReconstructFromPrefix: prefix longer than n/2 + 1");
  }
  std::vector<std::complex<double>> spectrum(n, {0.0, 0.0});
  for (std::size_t j = 0; j < prefix.size(); ++j) {
    spectrum[j] = prefix[j];
    if (j != 0 && j != n - j) {
      spectrum[n - j] = std::conj(prefix[j]);
    }
  }
  // DC and (if kept) Nyquist coefficients must be real for a real signal.
  spectrum[0] = {spectrum[0].real(), 0.0};
  if (prefix.size() == n / 2 + 1 && n >= 2) {
    spectrum[n / 2] = {spectrum[n / 2].real(), 0.0};
  }
  return InverseToReal(std::move(spectrum));
}

}  // namespace dphist
