#ifndef DPHIST_TRANSFORM_HAAR_WAVELET_H_
#define DPHIST_TRANSFORM_HAAR_WAVELET_H_

#include <cstddef>
#include <vector>

#include "dphist/common/result.h"
#include "dphist/common/status.h"

namespace dphist {

/// \brief The Haar wavelet decomposition used by Privelet (Xiao, Wang &
/// Gehrke, ICDE'10 / TKDE'11).
///
/// For a vector x of length n = 2^m, the decomposition is stored heap-style:
///
///   coefficient[0]            = overall average of x,
///   coefficient[t], t=1..n-1  = (mean of left half - mean of right half)/2
///                               of the dyadic interval owned by heap node t
///                               (node 1 owns [0, n), node 2t its left half,
///                               node 2t+1 its right half).
///
/// Reconstruction: x_i = c_0 + sum over the root-to-leaf path of
/// (+c_t if i lies in the left half of node t, else -c_t).
///
/// Properties relevant to DP (proved in the Privelet paper, unit-tested
/// here): adding one record to a unit bin changes c_0 by 1/n and exactly
/// one coefficient per level l by 2^l / n — so with weights
/// W(c_0) = n, W(c_t at level l) = n / 2^l (the node's interval length),
/// the weighted L1 change is exactly 1 + log2(n).
class HaarWavelet {
 public:
  /// Forward transform. Requires x.size() to be a power of two (>= 1);
  /// callers pad with zeros (see PadToPowerOfTwo).
  static Result<std::vector<double>> Forward(const std::vector<double>& x);

  /// Inverse transform. Requires coefficients.size() to be a power of two.
  static Result<std::vector<double>> Inverse(
      const std::vector<double>& coefficients);

  /// Level of heap node t (root t=1 is level 0). Requires t >= 1.
  static std::size_t LevelOf(std::size_t t);

  /// The Privelet generalized-sensitivity weight of coefficient index `t`
  /// in a transform of length n: n for t == 0 (the average), n / 2^level
  /// for detail coefficients.
  static double WeightOf(std::size_t t, std::size_t n);

  /// The generalized sensitivity rho = 1 + log2(n) under WeightOf.
  static double GeneralizedSensitivity(std::size_t n);

  /// Returns x padded with zeros to the next power of two.
  static std::vector<double> PadToPowerOfTwo(const std::vector<double>& x);
};

}  // namespace dphist

#endif  // DPHIST_TRANSFORM_HAAR_WAVELET_H_
