#ifndef DPHIST_TRANSFORM_FOURIER_H_
#define DPHIST_TRANSFORM_FOURIER_H_

#include <complex>
#include <cstddef>
#include <vector>

#include "dphist/common/result.h"
#include "dphist/common/status.h"

namespace dphist {

/// \brief Radix-2 fast Fourier transform — the substrate of the EFPA
/// baseline (Acs, Castelluccia & Chen, ICDM'12), which perturbs a truncated
/// Fourier representation of the histogram.
///
/// Conventions: forward transform F_j = sum_t x_t exp(-2*pi*i*j*t/n)
/// (unnormalized); the inverse divides by n. For a real input the spectrum
/// is conjugate-symmetric, F_{n-j} = conj(F_j) — EFPA exploits this to
/// store only the first half of the coefficients.
class Fft {
 public:
  /// In-place iterative radix-2 FFT. Requires a power-of-two length.
  static Status Forward(std::vector<std::complex<double>>& data);

  /// Inverse FFT (includes the 1/n normalization).
  static Status Inverse(std::vector<std::complex<double>>& data);

  /// Forward transform of a real vector. Requires a power-of-two length.
  static Result<std::vector<std::complex<double>>> ForwardReal(
      const std::vector<double>& x);

  /// Inverse transform returning the real parts (imaginary parts of a
  /// conjugate-symmetric spectrum cancel; any residue is discarded).
  static Result<std::vector<double>> InverseToReal(
      std::vector<std::complex<double>> spectrum);

  /// Reconstructs a real vector of length n from the first `kept`
  /// coefficients of its spectrum (the rest treated as zero, with
  /// conjugate symmetry restored for the mirrored half). This is EFPA's
  /// lossy low-pass reconstruction. Requires kept <= n/2 + 1 and n a
  /// power of two.
  static Result<std::vector<double>> ReconstructFromPrefix(
      const std::vector<std::complex<double>>& prefix, std::size_t n);
};

}  // namespace dphist

#endif  // DPHIST_TRANSFORM_FOURIER_H_
