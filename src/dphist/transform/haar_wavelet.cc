#include "dphist/transform/haar_wavelet.h"

#include "dphist/common/math_util.h"

namespace dphist {

Result<std::vector<double>> HaarWavelet::Forward(const std::vector<double>& x) {
  const std::size_t n = x.size();
  if (!IsPowerOfTwo(n)) {
    return Status::InvalidArgument(
        "HaarWavelet::Forward requires a power-of-two length");
  }
  // means[t] = average of the dyadic interval owned by heap node t;
  // leaves are nodes n .. 2n-1.
  std::vector<double> means(2 * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    means[n + i] = x[i];
  }
  for (std::size_t t = n - 1; t >= 1; --t) {
    means[t] = 0.5 * (means[2 * t] + means[2 * t + 1]);
  }
  std::vector<double> coefficients(n, 0.0);
  coefficients[0] = means[1];
  for (std::size_t t = 1; t < n; ++t) {
    coefficients[t] = 0.5 * (means[2 * t] - means[2 * t + 1]);
  }
  return coefficients;
}

Result<std::vector<double>> HaarWavelet::Inverse(
    const std::vector<double>& coefficients) {
  const std::size_t n = coefficients.size();
  if (!IsPowerOfTwo(n)) {
    return Status::InvalidArgument(
        "HaarWavelet::Inverse requires a power-of-two length");
  }
  std::vector<double> means(2 * n, 0.0);
  means[1] = coefficients[0];
  for (std::size_t t = 1; t < n; ++t) {
    means[2 * t] = means[t] + coefficients[t];
    means[2 * t + 1] = means[t] - coefficients[t];
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = means[n + i];
  }
  return x;
}

std::size_t HaarWavelet::LevelOf(std::size_t t) { return FloorLog2(t); }

double HaarWavelet::WeightOf(std::size_t t, std::size_t n) {
  if (t == 0) {
    return static_cast<double>(n);
  }
  return static_cast<double>(n) /
         static_cast<double>(std::size_t{1} << LevelOf(t));
}

double HaarWavelet::GeneralizedSensitivity(std::size_t n) {
  return 1.0 + static_cast<double>(FloorLog2(n));
}

std::vector<double> HaarWavelet::PadToPowerOfTwo(
    const std::vector<double>& x) {
  std::vector<double> padded = x;
  padded.resize(NextPowerOfTwo(x.size()), 0.0);
  return padded;
}

}  // namespace dphist
