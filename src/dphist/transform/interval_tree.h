#ifndef DPHIST_TRANSFORM_INTERVAL_TREE_H_
#define DPHIST_TRANSFORM_INTERVAL_TREE_H_

#include <cstddef>
#include <vector>

#include "dphist/common/result.h"
#include "dphist/common/status.h"

namespace dphist {

/// \brief A complete f-ary interval tree over a power-of-f number of unit
/// bins — the substrate of the Boost baseline (Hay, Rastogi, Miklau & Suciu,
/// VLDB'10).
///
/// Nodes are stored in level order: level 0 is the root, level l has f^l
/// nodes, and the deepest level holds one node per unit bin. The node at
/// (level l, position p) owns the leaf interval
/// [p * f^(L-1-l), (p+1) * f^(L-1-l)) where L is the number of levels.
///
/// `ConstrainedInference` implements Hay et al.'s two-pass least-squares
/// estimate: given one noisy value per node (all with equal noise variance),
/// it returns the unique leaf estimates minimizing the L2 distance to the
/// noisy tree subject to the parent-equals-sum-of-children constraints.
class IntervalTree {
 public:
  /// Creates a tree over `num_leaves` unit bins with the given fanout.
  /// Requires fanout >= 2 and num_leaves a positive power of fanout.
  static Result<IntervalTree> Create(std::size_t num_leaves,
                                     std::size_t fanout);

  /// Number of unit bins (deepest-level nodes).
  std::size_t num_leaves() const { return num_leaves_; }
  /// The fanout f.
  std::size_t fanout() const { return fanout_; }
  /// Number of levels L (a single-leaf tree has L = 1).
  std::size_t num_levels() const { return level_offset_.size() - 1; }
  /// Total number of nodes.
  std::size_t num_nodes() const { return level_offset_.back(); }

  /// Level of node `v` (root is 0).
  std::size_t LevelOf(std::size_t v) const;
  /// Index of the first node of level `l`.
  std::size_t LevelBegin(std::size_t l) const { return level_offset_[l]; }
  /// First leaf (unit-bin index) covered by node `v`.
  std::size_t IntervalBegin(std::size_t v) const;
  /// One past the last leaf covered by node `v`.
  std::size_t IntervalEnd(std::size_t v) const;
  /// Index of the first child of internal node `v`.
  std::size_t FirstChild(std::size_t v) const;
  /// Index of the parent of non-root node `v`.
  std::size_t Parent(std::size_t v) const;
  /// True iff `v` is on the deepest level.
  bool IsLeaf(std::size_t v) const;

  /// Computes every node's true interval sum from unit-bin counts.
  /// Requires leaves.size() == num_leaves().
  Result<std::vector<double>> NodeSums(const std::vector<double>& leaves) const;

  /// Hay et al.'s constrained inference: turns one noisy value per node
  /// into consistent, variance-optimal leaf estimates.
  /// Requires noisy.size() == num_nodes().
  Result<std::vector<double>> ConstrainedInference(
      const std::vector<double>& noisy) const;

 private:
  IntervalTree() = default;

  std::size_t num_leaves_ = 0;
  std::size_t fanout_ = 0;
  // level_offset_[l] = index of the first node at level l;
  // level_offset_[L] = total node count.
  std::vector<std::size_t> level_offset_;
  // leaf_span_[l] = number of leaves under a node at level l.
  std::vector<std::size_t> leaf_span_;
};

}  // namespace dphist

#endif  // DPHIST_TRANSFORM_INTERVAL_TREE_H_
