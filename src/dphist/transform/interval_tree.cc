#include "dphist/transform/interval_tree.h"

#include <algorithm>
#include <cmath>

namespace dphist {

Result<IntervalTree> IntervalTree::Create(std::size_t num_leaves,
                                          std::size_t fanout) {
  if (fanout < 2) {
    return Status::InvalidArgument("IntervalTree requires fanout >= 2");
  }
  if (num_leaves == 0) {
    return Status::InvalidArgument("IntervalTree requires num_leaves >= 1");
  }
  // num_leaves must be an exact power of fanout.
  std::size_t span = 1;
  std::size_t levels = 1;
  while (span < num_leaves) {
    if (span > num_leaves / fanout) {
      return Status::InvalidArgument(
          "IntervalTree requires num_leaves to be a power of fanout");
    }
    span *= fanout;
    ++levels;
  }
  if (span != num_leaves) {
    return Status::InvalidArgument(
        "IntervalTree requires num_leaves to be a power of fanout");
  }

  IntervalTree tree;
  tree.num_leaves_ = num_leaves;
  tree.fanout_ = fanout;
  tree.level_offset_.resize(levels + 1);
  tree.leaf_span_.resize(levels);
  std::size_t offset = 0;
  std::size_t nodes_at_level = 1;
  for (std::size_t l = 0; l < levels; ++l) {
    tree.level_offset_[l] = offset;
    offset += nodes_at_level;
    nodes_at_level *= fanout;
  }
  tree.level_offset_[levels] = offset;
  std::size_t leaves_under = num_leaves;
  for (std::size_t l = 0; l < levels; ++l) {
    tree.leaf_span_[l] = leaves_under;
    leaves_under /= fanout;
  }
  return tree;
}

std::size_t IntervalTree::LevelOf(std::size_t v) const {
  const auto it = std::upper_bound(level_offset_.begin(), level_offset_.end(),
                                   v);
  return static_cast<std::size_t>(it - level_offset_.begin()) - 1;
}

std::size_t IntervalTree::IntervalBegin(std::size_t v) const {
  const std::size_t l = LevelOf(v);
  const std::size_t p = v - level_offset_[l];
  return p * leaf_span_[l];
}

std::size_t IntervalTree::IntervalEnd(std::size_t v) const {
  const std::size_t l = LevelOf(v);
  const std::size_t p = v - level_offset_[l];
  return (p + 1) * leaf_span_[l];
}

std::size_t IntervalTree::FirstChild(std::size_t v) const {
  const std::size_t l = LevelOf(v);
  const std::size_t p = v - level_offset_[l];
  return level_offset_[l + 1] + p * fanout_;
}

std::size_t IntervalTree::Parent(std::size_t v) const {
  const std::size_t l = LevelOf(v);
  const std::size_t p = v - level_offset_[l];
  return level_offset_[l - 1] + p / fanout_;
}

bool IntervalTree::IsLeaf(std::size_t v) const {
  return v >= level_offset_[num_levels() - 1];
}

Result<std::vector<double>> IntervalTree::NodeSums(
    const std::vector<double>& leaves) const {
  if (leaves.size() != num_leaves_) {
    return Status::InvalidArgument(
        "IntervalTree::NodeSums: wrong number of leaves");
  }
  std::vector<double> sums(num_nodes(), 0.0);
  const std::size_t leaf_base = level_offset_[num_levels() - 1];
  for (std::size_t i = 0; i < num_leaves_; ++i) {
    sums[leaf_base + i] = leaves[i];
  }
  // Bottom-up accumulation.
  for (std::size_t v = leaf_base; v-- > 0;) {
    const std::size_t child = FirstChild(v);
    double total = 0.0;
    for (std::size_t c = 0; c < fanout_; ++c) {
      total += sums[child + c];
    }
    sums[v] = total;
  }
  return sums;
}

Result<std::vector<double>> IntervalTree::ConstrainedInference(
    const std::vector<double>& noisy) const {
  if (noisy.size() != num_nodes()) {
    return Status::InvalidArgument(
        "IntervalTree::ConstrainedInference: wrong number of node values");
  }
  const std::size_t levels = num_levels();
  const std::size_t leaf_base = level_offset_[levels - 1];
  const double f = static_cast<double>(fanout_);

  // Pass 1 (bottom-up): z[v] combines the node's own noisy value with its
  // children's aggregated estimates. With l = height in levels (leaves have
  // l = 1):
  //   z[v] = ((f^l - f^(l-1)) * y[v] + (f^(l-1) - 1) * sum z[children])
  //          / (f^l - 1).
  std::vector<double> z(noisy);
  for (std::size_t v = leaf_base; v-- > 0;) {
    const std::size_t level = LevelOf(v);
    const std::size_t height = levels - level;  // leaves have height 1
    const double fl = std::pow(f, static_cast<double>(height));
    const double fl1 = std::pow(f, static_cast<double>(height - 1));
    const std::size_t child = FirstChild(v);
    double child_sum = 0.0;
    for (std::size_t c = 0; c < fanout_; ++c) {
      child_sum += z[child + c];
    }
    z[v] = ((fl - fl1) * noisy[v] + (fl1 - 1.0) * child_sum) / (fl - 1.0);
  }

  // Pass 2 (top-down): distribute each node's residual equally among its
  // children to enforce consistency.
  std::vector<double> h(z);
  for (std::size_t v = 0; v < leaf_base; ++v) {
    const std::size_t child = FirstChild(v);
    double child_sum = 0.0;
    for (std::size_t c = 0; c < fanout_; ++c) {
      child_sum += z[child + c];
    }
    const double correction = (h[v] - child_sum) / f;
    for (std::size_t c = 0; c < fanout_; ++c) {
      h[child + c] = z[child + c] + correction;
    }
  }

  std::vector<double> result(num_leaves_, 0.0);
  for (std::size_t i = 0; i < num_leaves_; ++i) {
    result[i] = h[leaf_base + i];
  }
  return result;
}

}  // namespace dphist
