#include "dphist/data/csv.h"

#include <charconv>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <system_error>
#include <vector>

#include "dphist/testing/failpoint.h"

namespace dphist {

namespace {

// Trims ASCII whitespace from both ends.
std::string Trim(const std::string& s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && (s[begin] == ' ' || s[begin] == '\t' ||
                         s[begin] == '\r' || s[begin] == '\n')) {
    ++begin;
  }
  while (end > begin && (s[end - 1] == ' ' || s[end - 1] == '\t' ||
                         s[end - 1] == '\r' || s[end - 1] == '\n')) {
    --end;
  }
  return s.substr(begin, end - begin);
}

Result<double> ParseDouble(const std::string& token, std::size_t line_no) {
  try {
    std::size_t consumed = 0;
    const double value = std::stod(token, &consumed);
    if (consumed != token.size()) {
      return Status::ParseError("trailing characters on line " +
                                std::to_string(line_no));
    }
    return value;
  } catch (...) {
    return Status::ParseError("not a number on line " +
                              std::to_string(line_no));
  }
}

// Parses a bin index as an exact unsigned 64-bit integer. The previous
// implementation went through double, which silently rounds indices above
// 2^53 — fatal once domains can reach 2^63. Malformed text is a parse
// error; a numerically valid index too large for uint64 is a typed
// kInvalidArgument so callers can distinguish corrupt files from
// out-of-range ones.
Result<std::uint64_t> ParseIndexU64(const std::string& token,
                                    std::size_t line_no) {
  std::uint64_t value = 0;
  const char* begin = token.data();
  const char* end = begin + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec == std::errc::result_out_of_range) {
    return Status::InvalidArgument("index overflows uint64 on line " +
                                   std::to_string(line_no));
  }
  if (ec != std::errc() || ptr != end) {
    return Status::ParseError("index is not a non-negative integer on line " +
                              std::to_string(line_no));
  }
  return value;
}

}  // namespace

Result<Histogram> LoadHistogramCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open " + path);
  }
  std::vector<double> counts;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Chaos hook: a read failing mid-file (truncated/yanked input). With
    // an every-Nth trigger the loader dies partway through, which must
    // surface as a typed error, never a silently short histogram.
    DPHIST_FAILPOINT_RETURN_IF_SET("data/csv/read_line");
    const std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') {
      continue;
    }
    const std::size_t comma = trimmed.find(',');
    if (comma == std::string::npos) {
      auto value = ParseDouble(trimmed, line_no);
      if (!value.ok()) {
        return value.status();
      }
      counts.push_back(value.value());
    } else {
      auto index = ParseIndexU64(Trim(trimmed.substr(0, comma)), line_no);
      if (!index.ok()) {
        return index.status();
      }
      if (index.value() != counts.size()) {
        return Status::ParseError("indices must be dense and in order (line " +
                                  std::to_string(line_no) + ")");
      }
      auto value = ParseDouble(Trim(trimmed.substr(comma + 1)), line_no);
      if (!value.ok()) {
        return value.status();
      }
      counts.push_back(value.value());
    }
  }
  if (counts.empty()) {
    return Status::ParseError("no counts found in " + path);
  }
  return Histogram(std::move(counts));
}

Status SaveHistogramCsv(const Histogram& histogram, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::NotFound("cannot open " + path + " for writing");
  }
  for (std::size_t i = 0; i < histogram.size(); ++i) {
    out << i << "," << histogram.count(i) << "\n";
  }
  if (!out) {
    return Status::Internal("write to " + path + " failed");
  }
  return Status::Ok();
}

}  // namespace dphist
