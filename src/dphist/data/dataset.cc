#include "dphist/data/dataset.h"

#include <algorithm>

namespace dphist {

DatasetStats ComputeStats(const Dataset& dataset) {
  DatasetStats stats;
  stats.domain_size = dataset.histogram.size();
  for (double count : dataset.histogram.counts()) {
    stats.total_records += count;
    if (count != 0.0) {
      ++stats.nonzero_bins;
    }
    stats.max_count = std::max(stats.max_count, count);
  }
  if (stats.domain_size > 0) {
    stats.mean_count =
        stats.total_records / static_cast<double>(stats.domain_size);
  }
  return stats;
}

}  // namespace dphist
