#ifndef DPHIST_DATA_CSV_H_
#define DPHIST_DATA_CSV_H_

#include <string>

#include "dphist/common/result.h"
#include "dphist/common/status.h"
#include "dphist/hist/histogram.h"

namespace dphist {

/// \brief Minimal CSV I/O so users can run the algorithms on their own
/// histograms.
///
/// Format: one line per unit bin. A line is either a bare count
/// ("42") or an "index,count" pair; in the latter case indices must be
/// 0-based, dense and in order. Blank lines and lines starting with '#'
/// are skipped.

/// Loads a histogram from `path`. Returns NotFound if the file cannot be
/// opened and ParseError on malformed content.
Result<Histogram> LoadHistogramCsv(const std::string& path);

/// Writes `histogram` to `path` as "index,count" lines.
Status SaveHistogramCsv(const Histogram& histogram, const std::string& path);

}  // namespace dphist

#endif  // DPHIST_DATA_CSV_H_
