#ifndef DPHIST_DATA_GENERATORS_H_
#define DPHIST_DATA_GENERATORS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dphist/data/dataset.h"
#include "dphist/random/rng.h"

namespace dphist {

/// \brief Synthetic stand-ins for the paper's evaluation datasets.
///
/// The original evaluation used real traces (US Census ages, an IP-level
/// network trace, search-keyword frequencies over time, and a social-graph
/// degree distribution) that are not available offline. Each generator
/// below reproduces the *shape* that drives the algorithms' relative
/// behaviour — smoothness, sparsity, burstiness, tail decay — at a
/// comparable scale, deterministically from a seed. See DESIGN.md for the
/// substitution rationale per dataset.

/// Census-age-like histogram: a smooth multi-modal age pyramid.
/// Domain: 100 unit bins (ages 0-99); ~1M records.
Dataset MakeAge(std::uint64_t seed);

/// Network-trace-like histogram: sparse background with heavy power-law
/// spikes (hot hosts). `domain_size` defaults to 4096 in callers.
Dataset MakeNetTrace(std::size_t domain_size, std::uint64_t seed);

/// Search-log-like histogram: bursty piecewise epochs with a mild daily
/// periodicity, as in keyword-frequency-over-time traces.
Dataset MakeSearchLogs(std::size_t domain_size, std::uint64_t seed);

/// Social-network-like histogram: power-law degree distribution
/// (count(d) ~ (d+1)^-2.5), monotone with a long flat tail.
Dataset MakeSocialNetwork(std::size_t domain_size, std::uint64_t seed);

/// Uniform histogram (every bin near `level`): the regime where merging is
/// free and NoiseFirst's advantage over Dwork is largest. Used by tests.
Dataset MakeUniform(std::size_t domain_size, double level,
                    std::uint64_t seed);

/// Piecewise-constant histogram with `num_segments` random plateaus: ground
/// truth with a known ideal structure. Used by tests.
Dataset MakePiecewiseConstant(std::size_t domain_size,
                              std::size_t num_segments, double max_level,
                              std::uint64_t seed);

/// The paper's four-dataset suite at the given trace domain size (Age is
/// always 100 bins).
std::vector<Dataset> MakePaperSuite(std::size_t trace_domain_size,
                                    std::uint64_t seed);

}  // namespace dphist

#endif  // DPHIST_DATA_GENERATORS_H_
