#ifndef DPHIST_DATA_DATASET_H_
#define DPHIST_DATA_DATASET_H_

#include <cstddef>
#include <string>

#include "dphist/hist/histogram.h"

namespace dphist {

/// \brief A named histogram dataset used in the evaluation.
struct Dataset {
  /// Short identifier ("age", "nettrace", ...).
  std::string name;
  /// One-line provenance note (what the paper used; what this stands in
  /// for).
  std::string description;
  /// The true unit-bin counts.
  Histogram histogram;
};

/// \brief Summary statistics for the dataset table (experiment T1).
struct DatasetStats {
  std::size_t domain_size = 0;
  double total_records = 0.0;
  /// Number of non-zero bins.
  std::size_t nonzero_bins = 0;
  double max_count = 0.0;
  double mean_count = 0.0;
};

/// Computes summary statistics of a dataset's histogram.
DatasetStats ComputeStats(const Dataset& dataset);

}  // namespace dphist

#endif  // DPHIST_DATA_DATASET_H_
