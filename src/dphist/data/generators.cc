#include "dphist/data/generators.h"

#include <algorithm>
#include <cmath>

#include "dphist/random/distributions.h"

namespace dphist {

namespace {

// Gaussian bump helper for density mixtures.
double Bump(double x, double center, double width) {
  const double z = (x - center) / width;
  return std::exp(-0.5 * z * z);
}

// Turns a non-negative density into integer counts totalling roughly
// `total_records`, with per-bin Poisson-like jitter so the histogram looks
// like sampled data rather than an analytic curve.
std::vector<double> DensityToCounts(const std::vector<double>& density,
                                    double total_records, Rng& rng) {
  double mass = 0.0;
  for (double d : density) {
    mass += d;
  }
  std::vector<double> counts(density.size(), 0.0);
  if (mass <= 0.0) {
    return counts;
  }
  for (std::size_t i = 0; i < density.size(); ++i) {
    const double expected = total_records * density[i] / mass;
    // Gaussian approximation to Poisson jitter (cheap, deterministic).
    const double u1 = SampleUniformDoublePositive(rng);
    const double u2 = SampleUniformDouble(rng);
    const double normal =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    const double jittered = expected + normal * std::sqrt(expected);
    counts[i] = std::max(0.0, std::round(jittered));
  }
  return counts;
}

}  // namespace

Dataset MakeAge(std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t n = 100;
  std::vector<double> density(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i);
    // Age pyramid: broad child/young-adult mass, a boomer bump, a smooth
    // decline past retirement age.
    density[i] = 0.9 * Bump(x, 10.0, 12.0) + 1.0 * Bump(x, 35.0, 14.0) +
                 0.8 * Bump(x, 55.0, 10.0) + 0.25 * Bump(x, 75.0, 9.0);
  }
  Dataset dataset;
  dataset.name = "age";
  dataset.description =
      "synthetic stand-in for US Census (IPUMS) ages: smooth multi-modal "
      "pyramid, 100 bins, ~1M records";
  dataset.histogram = Histogram(DensityToCounts(density, 1.0e6, rng));
  return dataset;
}

Dataset MakeNetTrace(std::size_t domain_size, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> counts(domain_size, 0.0);
  // Sparse background: ~20% of bins hold a few connections.
  for (std::size_t i = 0; i < domain_size; ++i) {
    if (SampleUniformDouble(rng) < 0.2) {
      counts[i] = static_cast<double>(1 + SampleGeometric(rng, 0.4));
    }
  }
  // Hot hosts: power-law spike magnitudes at random positions.
  const std::size_t num_spikes = std::max<std::size_t>(4, domain_size / 64);
  for (std::size_t s = 0; s < num_spikes; ++s) {
    const std::size_t pos = SampleIndex(rng, domain_size);
    const double u = SampleUniformDoublePositive(rng);
    // Pareto tail with exponent ~1.2, capped for sanity.
    const double magnitude = std::min(50000.0, 50.0 * std::pow(u, -1.2));
    counts[pos] += std::round(magnitude);
  }
  Dataset dataset;
  dataset.name = "nettrace";
  dataset.description =
      "synthetic stand-in for an IP-level network trace: sparse background "
      "with heavy power-law spikes";
  dataset.histogram = Histogram(std::move(counts));
  return dataset;
}

Dataset MakeSearchLogs(std::size_t domain_size, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> counts(domain_size, 0.0);
  // Piecewise epochs whose levels follow a log-normal, modulated by a
  // mild periodic (daily) factor.
  std::size_t i = 0;
  while (i < domain_size) {
    const std::size_t epoch_len = static_cast<std::size_t>(
        SampleUniformInt(rng, 16, 96));
    const double u1 = SampleUniformDoublePositive(rng);
    const double u2 = SampleUniformDouble(rng);
    const double normal =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    const double level = std::exp(3.0 + 1.2 * normal);
    for (std::size_t j = 0; j < epoch_len && i < domain_size; ++j, ++i) {
      const double period =
          1.0 + 0.4 * std::sin(2.0 * 3.141592653589793 *
                               static_cast<double>(i) / 24.0);
      const double noise = 0.7 + 0.6 * SampleUniformDouble(rng);
      counts[i] = std::round(level * period * noise);
    }
  }
  Dataset dataset;
  dataset.name = "searchlogs";
  dataset.description =
      "synthetic stand-in for keyword-frequency-over-time search logs: "
      "bursty log-normal epochs with daily periodicity";
  dataset.histogram = Histogram(std::move(counts));
  return dataset;
}

Dataset MakeSocialNetwork(std::size_t domain_size, std::uint64_t seed) {
  Rng rng(seed);
  const double num_nodes = 2.0e5;
  std::vector<double> density(domain_size, 0.0);
  for (std::size_t d = 0; d < domain_size; ++d) {
    density[d] = std::pow(static_cast<double>(d) + 1.0, -2.5);
  }
  Dataset dataset;
  dataset.name = "social";
  dataset.description =
      "synthetic stand-in for a social-graph degree distribution: "
      "power-law decay with exponent 2.5";
  dataset.histogram = Histogram(DensityToCounts(density, num_nodes, rng));
  return dataset;
}

Dataset MakeUniform(std::size_t domain_size, double level,
                    std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> counts(domain_size, 0.0);
  for (double& c : counts) {
    // Small integer jitter around the level.
    c = std::max(0.0, std::round(level + static_cast<double>(SampleUniformInt(
                                              rng, -2, 2))));
  }
  Dataset dataset;
  dataset.name = "uniform";
  dataset.description = "near-uniform histogram (merging-friendly regime)";
  dataset.histogram = Histogram(std::move(counts));
  return dataset;
}

Dataset MakePiecewiseConstant(std::size_t domain_size,
                              std::size_t num_segments, double max_level,
                              std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> counts(domain_size, 0.0);
  const std::size_t segments = std::max<std::size_t>(1, num_segments);
  const std::size_t base_len = std::max<std::size_t>(1, domain_size / segments);
  std::size_t i = 0;
  while (i < domain_size) {
    const double level =
        std::round(max_level * SampleUniformDouble(rng));
    const std::size_t len = std::min(base_len, domain_size - i);
    for (std::size_t j = 0; j < len; ++j, ++i) {
      counts[i] = level;
    }
  }
  Dataset dataset;
  dataset.name = "piecewise";
  dataset.description = "piecewise-constant histogram with a known structure";
  dataset.histogram = Histogram(std::move(counts));
  return dataset;
}

std::vector<Dataset> MakePaperSuite(std::size_t trace_domain_size,
                                    std::uint64_t seed) {
  std::vector<Dataset> suite;
  suite.push_back(MakeAge(seed + 1));
  suite.push_back(MakeNetTrace(trace_domain_size, seed + 2));
  suite.push_back(MakeSearchLogs(trace_domain_size, seed + 3));
  suite.push_back(MakeSocialNetwork(
      std::max<std::size_t>(64, trace_domain_size / 4), seed + 4));
  return suite;
}

}  // namespace dphist
