#include "dphist/metrics/metrics.h"

#include <algorithm>
#include <cmath>

#include "dphist/common/math_util.h"

namespace dphist {

namespace {

Status CheckPaired(const std::vector<double>& truth,
                   const std::vector<double>& estimate) {
  if (truth.size() != estimate.size()) {
    return Status::InvalidArgument("metric inputs must have equal size");
  }
  if (truth.empty()) {
    return Status::InvalidArgument("metric inputs must be non-empty");
  }
  return Status::Ok();
}

// Clamp-negatives-and-smooth normalization shared by KL.
std::vector<double> SmoothedDistribution(const std::vector<double>& counts,
                                         double smoothing) {
  std::vector<double> dist(counts.size());
  KahanSum total;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    dist[i] = std::max(counts[i], 0.0) + smoothing;
    total.Add(dist[i]);
  }
  for (double& p : dist) {
    p /= total.Total();
  }
  return dist;
}

}  // namespace

Result<double> MeanAbsoluteError(const std::vector<double>& truth,
                                 const std::vector<double>& estimate) {
  DPHIST_RETURN_IF_ERROR(CheckPaired(truth, estimate));
  KahanSum acc;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    acc.Add(std::abs(truth[i] - estimate[i]));
  }
  return acc.Total() / static_cast<double>(truth.size());
}

Result<double> MeanSquaredError(const std::vector<double>& truth,
                                const std::vector<double>& estimate) {
  DPHIST_RETURN_IF_ERROR(CheckPaired(truth, estimate));
  KahanSum acc;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const double d = truth[i] - estimate[i];
    acc.Add(d * d);
  }
  return acc.Total() / static_cast<double>(truth.size());
}

Result<double> KlDivergence(const Histogram& truth, const Histogram& estimate,
                            double smoothing) {
  if (truth.size() != estimate.size() || truth.empty()) {
    return Status::InvalidArgument(
        "KlDivergence requires equal-size non-empty histograms");
  }
  if (!(smoothing > 0.0)) {
    return Status::InvalidArgument("KlDivergence requires smoothing > 0");
  }
  const std::vector<double> p =
      SmoothedDistribution(truth.counts(), smoothing);
  const std::vector<double> q =
      SmoothedDistribution(estimate.counts(), smoothing);
  KahanSum acc;
  for (std::size_t i = 0; i < p.size(); ++i) {
    acc.Add(p[i] * std::log(p[i] / q[i]));
  }
  // Tiny negative values can arise from rounding; KL is non-negative.
  return std::max(acc.Total(), 0.0);
}

Result<double> KsDistance(const Histogram& truth, const Histogram& estimate) {
  if (truth.size() != estimate.size() || truth.empty()) {
    return Status::InvalidArgument(
        "KsDistance requires equal-size non-empty histograms");
  }
  const std::vector<double> p = truth.ToDistribution();
  const std::vector<double> q = estimate.ToDistribution();
  double cdf_p = 0.0;
  double cdf_q = 0.0;
  double worst = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    cdf_p += p[i];
    cdf_q += q[i];
    worst = std::max(worst, std::abs(cdf_p - cdf_q));
  }
  return worst;
}

Result<WorkloadError> EvaluateWorkload(
    const Histogram& truth, const Histogram& estimate,
    const std::vector<RangeQuery>& queries) {
  if (truth.size() != estimate.size()) {
    return Status::InvalidArgument(
        "EvaluateWorkload requires equal-size histograms");
  }
  if (queries.empty()) {
    return Status::InvalidArgument(
        "EvaluateWorkload requires a non-empty workload");
  }
  auto true_answers = AnswerQueries(truth, queries);
  if (!true_answers.ok()) {
    return true_answers.status();
  }
  auto est_answers = AnswerQueries(estimate, queries);
  if (!est_answers.ok()) {
    return est_answers.status();
  }
  WorkloadError error;
  KahanSum abs_acc;
  KahanSum sq_acc;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const double d = true_answers.value()[i] - est_answers.value()[i];
    abs_acc.Add(std::abs(d));
    sq_acc.Add(d * d);
    error.max_absolute = std::max(error.max_absolute, std::abs(d));
  }
  error.mean_absolute = abs_acc.Total() / static_cast<double>(queries.size());
  error.mean_squared = sq_acc.Total() / static_cast<double>(queries.size());
  return error;
}

}  // namespace dphist
