#ifndef DPHIST_METRICS_ANALYTIC_H_
#define DPHIST_METRICS_ANALYTIC_H_

#include <cstddef>

#include "dphist/common/result.h"
#include "dphist/query/range_query.h"

namespace dphist {

/// \brief Closed-form error models for the analytically tractable
/// mechanisms.
///
/// These formulas serve two purposes: they are the yardsticks the paper's
/// analysis compares against, and they verify the implementation — the
/// tests check the *empirical* variance of each mechanism against these
/// expressions, which catches mis-scaled noise that accuracy-ordering
/// tests might miss.

/// Variance of a length-`len` range query under the Dwork baseline:
/// each bin contributes an independent Lap(1/eps), so 2*len/eps^2.
/// Requires eps > 0.
Result<double> DworkRangeVariance(std::size_t length, double epsilon);

/// Variance of a range query under Privelet on a domain padded to n
/// (power of two): the query answer is a fixed linear combination of the
/// independent noisy coefficients. The overall-average coefficient
/// contributes with weight len(q); a detail coefficient at heap node t
/// contributes with weight |q ∩ left(t)| - |q ∩ right(t)| (zero whenever
/// the node lies entirely inside or outside q, so only boundary-straddling
/// nodes matter). Each coefficient carries variance 2*(rho/(eps*W))^2.
/// Requires a power-of-two domain, a non-empty in-range query, eps > 0.
Result<double> PriveletRangeVariance(std::size_t domain_size,
                                     const RangeQuery& query,
                                     double epsilon);

/// Per-unit-bin variance under grouping-and-smoothing with group width w:
/// the group sum carries Lap(1/eps) and is divided by w, so 2/(w^2 eps^2).
/// Requires w >= 1 and eps > 0.
Result<double> GroupedBinVariance(std::size_t group_width, double epsilon);

}  // namespace dphist

#endif  // DPHIST_METRICS_ANALYTIC_H_
