#ifndef DPHIST_METRICS_METRICS_H_
#define DPHIST_METRICS_METRICS_H_

#include <cstddef>
#include <vector>

#include "dphist/common/result.h"
#include "dphist/hist/histogram.h"
#include "dphist/query/range_query.h"

namespace dphist {

/// \brief The error metrics of the paper's evaluation.

/// Mean absolute error between paired vectors. Fails on size mismatch or
/// empty input.
Result<double> MeanAbsoluteError(const std::vector<double>& truth,
                                 const std::vector<double>& estimate);

/// Mean squared error between paired vectors.
Result<double> MeanSquaredError(const std::vector<double>& truth,
                                const std::vector<double>& estimate);

/// Kullback-Leibler divergence KL(P_true || P_est) between the two
/// histograms viewed as distributions (negative counts clamped, mass
/// renormalized, and `smoothing` added to every cell of both before
/// normalizing so the divergence is finite). Requires equal sizes and
/// smoothing > 0.
Result<double> KlDivergence(const Histogram& truth, const Histogram& estimate,
                            double smoothing = 1e-9);

/// Kolmogorov-Smirnov distance between the two histograms' normalized CDFs.
Result<double> KsDistance(const Histogram& truth, const Histogram& estimate);

/// \brief Accuracy of a published histogram on a range-query workload.
struct WorkloadError {
  double mean_absolute = 0.0;
  double mean_squared = 0.0;
  /// Largest single-query absolute error.
  double max_absolute = 0.0;
};

/// Evaluates `estimate` against `truth` on `queries`.
Result<WorkloadError> EvaluateWorkload(const Histogram& truth,
                                       const Histogram& estimate,
                                       const std::vector<RangeQuery>& queries);

}  // namespace dphist

#endif  // DPHIST_METRICS_METRICS_H_
