#include "dphist/metrics/analytic.h"

#include <algorithm>

#include "dphist/common/math_util.h"
#include "dphist/transform/haar_wavelet.h"

namespace dphist {

namespace {

// Size of the overlap between [a1, b1) and [a2, b2).
std::size_t Overlap(std::size_t a1, std::size_t b1, std::size_t a2,
                    std::size_t b2) {
  const std::size_t lo = std::max(a1, a2);
  const std::size_t hi = std::min(b1, b2);
  return hi > lo ? hi - lo : 0;
}

}  // namespace

Result<double> DworkRangeVariance(std::size_t length, double epsilon) {
  if (!(epsilon > 0.0)) {
    return Status::InvalidArgument("DworkRangeVariance requires epsilon > 0");
  }
  return 2.0 * static_cast<double>(length) / (epsilon * epsilon);
}

Result<double> PriveletRangeVariance(std::size_t domain_size,
                                     const RangeQuery& query,
                                     double epsilon) {
  if (!IsPowerOfTwo(domain_size)) {
    return Status::InvalidArgument(
        "PriveletRangeVariance requires a power-of-two domain");
  }
  if (!(epsilon > 0.0)) {
    return Status::InvalidArgument(
        "PriveletRangeVariance requires epsilon > 0");
  }
  if (query.begin >= query.end || query.end > domain_size) {
    return Status::InvalidArgument(
        "PriveletRangeVariance: query out of range");
  }
  const double rho = HaarWavelet::GeneralizedSensitivity(domain_size);
  const double len = static_cast<double>(query.length());

  // Overall average coefficient: weight len, scale rho/(eps * n).
  const double scale0 =
      rho / (epsilon * HaarWavelet::WeightOf(0, domain_size));
  double variance = len * len * 2.0 * scale0 * scale0;

  // Detail coefficients, heap order: node t owns a dyadic interval; its
  // reconstruction sign is +1 on the left half, -1 on the right half.
  for (std::size_t t = 1; t < domain_size; ++t) {
    const std::size_t level = HaarWavelet::LevelOf(t);
    const std::size_t node_len = domain_size >> level;
    const std::size_t begin = (t - (std::size_t{1} << level)) * node_len;
    const std::size_t mid = begin + node_len / 2;
    const std::size_t end = begin + node_len;
    const double weight =
        static_cast<double>(Overlap(query.begin, query.end, begin, mid)) -
        static_cast<double>(Overlap(query.begin, query.end, mid, end));
    if (weight == 0.0) {
      continue;
    }
    const double scale =
        rho / (epsilon * HaarWavelet::WeightOf(t, domain_size));
    variance += weight * weight * 2.0 * scale * scale;
  }
  return variance;
}

Result<double> GroupedBinVariance(std::size_t group_width, double epsilon) {
  if (group_width == 0) {
    return Status::InvalidArgument("GroupedBinVariance requires width >= 1");
  }
  if (!(epsilon > 0.0)) {
    return Status::InvalidArgument("GroupedBinVariance requires epsilon > 0");
  }
  const double w = static_cast<double>(group_width);
  return 2.0 / (w * w * epsilon * epsilon);
}

}  // namespace dphist
