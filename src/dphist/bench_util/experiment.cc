#include "dphist/bench_util/experiment.h"

#include <chrono>
#include <cmath>

#include "dphist/random/rng.h"

namespace dphist {

Aggregate ComputeAggregate(const std::vector<double>& samples) {
  Aggregate agg;
  agg.repetitions = samples.size();
  if (samples.empty()) {
    return agg;
  }
  double sum = 0.0;
  for (double s : samples) {
    sum += s;
  }
  agg.mean = sum / static_cast<double>(samples.size());
  if (samples.size() > 1) {
    double ss = 0.0;
    for (double s : samples) {
      const double d = s - agg.mean;
      ss += d * d;
    }
    const double variance = ss / static_cast<double>(samples.size() - 1);
    agg.std_error =
        std::sqrt(variance / static_cast<double>(samples.size()));
  }
  return agg;
}

Result<CellResult> RunCell(const HistogramPublisher& publisher,
                           const Histogram& truth,
                           const std::vector<RangeQuery>& queries,
                           double epsilon, std::size_t repetitions,
                           std::uint64_t seed) {
  if (repetitions == 0) {
    return Status::InvalidArgument("RunCell requires repetitions >= 1");
  }
  Rng root(seed);
  std::vector<double> maes;
  std::vector<double> mses;
  std::vector<double> kls;
  std::vector<double> times;
  maes.reserve(repetitions);
  mses.reserve(repetitions);
  kls.reserve(repetitions);
  times.reserve(repetitions);
  for (std::size_t rep = 0; rep < repetitions; ++rep) {
    Rng rng = root.Fork();
    const auto start = std::chrono::steady_clock::now();
    auto released = publisher.Publish(truth, epsilon, rng);
    const auto stop = std::chrono::steady_clock::now();
    if (!released.ok()) {
      return released.status();
    }
    times.push_back(
        std::chrono::duration<double, std::milli>(stop - start).count());
    auto workload = EvaluateWorkload(truth, released.value(), queries);
    if (!workload.ok()) {
      return workload.status();
    }
    maes.push_back(workload.value().mean_absolute);
    mses.push_back(workload.value().mean_squared);
    auto kl = KlDivergence(truth, released.value());
    if (!kl.ok()) {
      return kl.status();
    }
    kls.push_back(kl.value());
  }
  CellResult cell;
  cell.workload_mae = ComputeAggregate(maes);
  cell.workload_mse = ComputeAggregate(mses);
  cell.kl_divergence = ComputeAggregate(kls);
  cell.publish_ms = ComputeAggregate(times);
  return cell;
}

}  // namespace dphist
