#include "dphist/bench_util/experiment.h"

#include <chrono>
#include <cmath>

#include "dphist/obs/obs.h"
#include "dphist/random/rng.h"

namespace dphist {

Aggregate ComputeAggregate(const std::vector<double>& samples) {
  Aggregate agg;
  agg.repetitions = samples.size();
  if (samples.empty()) {
    return agg;
  }
  double sum = 0.0;
  for (double s : samples) {
    sum += s;
  }
  agg.mean = sum / static_cast<double>(samples.size());
  if (samples.size() > 1) {
    double ss = 0.0;
    for (double s : samples) {
      const double d = s - agg.mean;
      ss += d * d;
    }
    const double variance = ss / static_cast<double>(samples.size() - 1);
    agg.std_error =
        std::sqrt(variance / static_cast<double>(samples.size()));
  }
  return agg;
}

Result<CellResult> RunCell(const HistogramPublisher& publisher,
                           const Histogram& truth,
                           const std::vector<RangeQuery>& queries,
                           double epsilon, std::size_t repetitions,
                           std::uint64_t seed,
                           const RunCellOptions& options) {
  if (repetitions == 0) {
    return Status::InvalidArgument("RunCell requires repetitions >= 1");
  }
  // Fork every repetition's stream up front, in repetition order: the child
  // streams are then a pure function of `seed`, independent of how the
  // repetitions are later scheduled across threads.
  Rng root(seed);
  std::vector<Rng> streams;
  streams.reserve(repetitions);
  for (std::size_t rep = 0; rep < repetitions; ++rep) {
    streams.push_back(root.Fork());
  }
  std::vector<double> maes(repetitions, 0.0);
  std::vector<double> mses(repetitions, 0.0);
  std::vector<double> kls(repetitions, 0.0);
  std::vector<double> times(repetitions, 0.0);
  std::vector<Status> statuses(repetitions);
  ThreadPool& pool = options.pool != nullptr ? *options.pool
                                             : ThreadPool::Global();
  pool.ParallelFor(0, repetitions, [&](std::size_t rep) {
    Rng rng = streams[rep];
    const auto start = std::chrono::steady_clock::now();
    auto released = publisher.Publish(truth, epsilon, rng);
    const auto stop = std::chrono::steady_clock::now();
    if (!released.ok()) {
      statuses[rep] = released.status();
      return;
    }
    times[rep] =
        std::chrono::duration<double, std::milli>(stop - start).count();
    auto workload = EvaluateWorkload(truth, released.value(), queries);
    if (!workload.ok()) {
      statuses[rep] = workload.status();
      return;
    }
    maes[rep] = workload.value().mean_absolute;
    mses[rep] = workload.value().mean_squared;
    auto kl = KlDivergence(truth, released.value());
    if (!kl.ok()) {
      statuses[rep] = kl.status();
      return;
    }
    kls[rep] = kl.value();
  });
  // Report the lowest-index failure, matching the status the sequential
  // loop would have stopped on.
  for (const Status& status : statuses) {
    if (!status.ok()) {
      return status;
    }
  }
  if (obs::Enabled()) {
    // Recorded in repetition order after the join so the distribution's
    // ingest sequence (hence its P-square state) is scheduling-independent.
    static obs::Counter& cells_run =
        obs::Registry::Global().GetCounter("runcell/cells");
    static obs::Counter& reps_run =
        obs::Registry::Global().GetCounter("runcell/repetitions");
    obs::Distribution& latency =
        obs::Registry::Global().GetDistribution("runcell/publish_ms");
    cells_run.Increment();
    reps_run.Add(repetitions);
    for (double ms : times) {
      latency.Record(ms);
    }
  }
  CellResult cell;
  cell.workload_mae = ComputeAggregate(maes);
  cell.workload_mse = ComputeAggregate(mses);
  cell.kl_divergence = ComputeAggregate(kls);
  cell.publish_ms = ComputeAggregate(times);
  if (options.collect_samples) {
    cell.mae_samples = std::move(maes);
  }
  return cell;
}

Result<CellResult> RunCell(const HistogramPublisher& publisher,
                           const Histogram& truth,
                           const std::vector<RangeQuery>& queries,
                           double epsilon, std::size_t repetitions,
                           std::uint64_t seed) {
  return RunCell(publisher, truth, queries, epsilon, repetitions, seed,
                 RunCellOptions{});
}

}  // namespace dphist
