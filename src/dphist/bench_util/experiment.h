#ifndef DPHIST_BENCH_UTIL_EXPERIMENT_H_
#define DPHIST_BENCH_UTIL_EXPERIMENT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dphist/algorithms/publisher.h"
#include "dphist/common/result.h"
#include "dphist/hist/histogram.h"
#include "dphist/metrics/metrics.h"
#include "dphist/query/range_query.h"

namespace dphist {

/// \brief Mean and standard error of a repeated measurement.
struct Aggregate {
  double mean = 0.0;
  double std_error = 0.0;
  std::size_t repetitions = 0;
};

/// Aggregates raw per-repetition samples into mean and standard error.
Aggregate ComputeAggregate(const std::vector<double>& samples);

/// \brief Result of running one (publisher, dataset, epsilon) cell.
struct CellResult {
  Aggregate workload_mae;
  Aggregate workload_mse;
  Aggregate kl_divergence;
  /// Wall time per publication, in milliseconds.
  Aggregate publish_ms;
};

/// \brief Runs `publisher` on `truth` `repetitions` times (fresh noise each
/// time, derived deterministically from `seed`) and evaluates each release
/// on `queries`.
///
/// This is the inner loop of every figure harness: one call = one point of
/// a paper figure.
Result<CellResult> RunCell(const HistogramPublisher& publisher,
                           const Histogram& truth,
                           const std::vector<RangeQuery>& queries,
                           double epsilon, std::size_t repetitions,
                           std::uint64_t seed);

}  // namespace dphist

#endif  // DPHIST_BENCH_UTIL_EXPERIMENT_H_
