#ifndef DPHIST_BENCH_UTIL_EXPERIMENT_H_
#define DPHIST_BENCH_UTIL_EXPERIMENT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dphist/algorithms/publisher.h"
#include "dphist/common/result.h"
#include "dphist/common/thread_pool.h"
#include "dphist/hist/histogram.h"
#include "dphist/metrics/metrics.h"
#include "dphist/query/range_query.h"

namespace dphist {

/// \brief Mean and standard error of a repeated measurement.
struct Aggregate {
  double mean = 0.0;
  double std_error = 0.0;
  std::size_t repetitions = 0;
};

/// Aggregates raw per-repetition samples into mean and standard error.
Aggregate ComputeAggregate(const std::vector<double>& samples);

/// \brief Result of running one (publisher, dataset, epsilon) cell.
struct CellResult {
  Aggregate workload_mae;
  Aggregate workload_mse;
  Aggregate kl_divergence;
  /// Wall time per publication, in milliseconds. The only field whose
  /// *samples* depend on machine load; the error aggregates above are
  /// bit-identical across thread counts (see RunCellOptions).
  Aggregate publish_ms;
  /// Per-repetition workload MAE in repetition order; filled only when
  /// RunCellOptions::collect_samples is set (distribution-level tests).
  std::vector<double> mae_samples;
};

/// \brief Execution knobs for RunCell.
struct RunCellOptions {
  /// Pool that repetitions fan out across; nullptr means the process-wide
  /// ThreadPool::Global(). A pool with thread_count() == 1 reproduces the
  /// sequential path exactly (it *is* the sequential path).
  ThreadPool* pool = nullptr;
  /// Record the raw per-repetition MAE samples in CellResult::mae_samples.
  bool collect_samples = false;
};

/// \brief Runs `publisher` on `truth` `repetitions` times (fresh noise each
/// time, derived deterministically from `seed`) and evaluates each release
/// on `queries`.
///
/// This is the inner loop of every figure harness: one call = one point of
/// a paper figure.
///
/// Determinism contract: one child Rng per repetition is forked from the
/// root seed *before* any repetition is dispatched, and every repetition
/// writes its metrics into its own slot, so all error statistics (and any
/// returned error Status) are bit-identical for any thread count and any
/// scheduling. Parallelism only changes the wall clock.
Result<CellResult> RunCell(const HistogramPublisher& publisher,
                           const Histogram& truth,
                           const std::vector<RangeQuery>& queries,
                           double epsilon, std::size_t repetitions,
                           std::uint64_t seed,
                           const RunCellOptions& options);

/// Convenience overload running on the global pool with default options.
Result<CellResult> RunCell(const HistogramPublisher& publisher,
                           const Histogram& truth,
                           const std::vector<RangeQuery>& queries,
                           double epsilon, std::size_t repetitions,
                           std::uint64_t seed);

}  // namespace dphist

#endif  // DPHIST_BENCH_UTIL_EXPERIMENT_H_
