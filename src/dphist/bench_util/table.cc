#include "dphist/bench_util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <utility>

namespace dphist {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::FormatDouble(double value, int precision) {
  std::ostringstream out;
  out.precision(precision);
  out << value;
  return out.str();
}

std::string TablePrinter::ToString() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      out << (c == 0 ? "" : "  ") << cell
          << std::string(widths[c] - cell.size(), ' ');
    }
    out << "\n";
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  out << std::string(total, '-') << "\n";
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out.str();
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace dphist
