#ifndef DPHIST_BENCH_UTIL_TABLE_H_
#define DPHIST_BENCH_UTIL_TABLE_H_

#include <cstddef>
#include <string>
#include <vector>

namespace dphist {

/// \brief Fixed-width ASCII table printer for the benchmark harnesses,
/// producing the rows the paper's tables/figures report.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; missing cells print empty, extra cells are dropped.
  void AddRow(std::vector<std::string> cells);

  /// Formats a double with `precision` significant digits (helper for
  /// callers building rows).
  static std::string FormatDouble(double value, int precision = 4);

  /// Renders the table (headers, separator, rows) as a string.
  std::string ToString() const;

  /// Prints the table to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dphist

#endif  // DPHIST_BENCH_UTIL_TABLE_H_
