#ifndef DPHIST_COMMON_MATH_UTIL_H_
#define DPHIST_COMMON_MATH_UTIL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dphist {

/// \brief Numerical helpers shared across dphist.
///
/// All functions are pure and allocation behaviour is documented per
/// function. Prefix-table helpers use Kahan (compensated) summation so that
/// interval statistics over long, large-count histograms stay accurate.

/// Returns the smallest power of two >= `n`; returns 1 for n == 0.
std::size_t NextPowerOfTwo(std::size_t n);

/// Returns true iff `n` is a (positive) power of two.
bool IsPowerOfTwo(std::size_t n);

/// Returns floor(log2(n)) for n >= 1; returns 0 for n == 0.
std::uint32_t FloorLog2(std::size_t n);

/// Returns ceil(log2(n)) for n >= 1; returns 0 for n <= 1.
std::uint32_t CeilLog2(std::size_t n);

/// Returns ceil(log_base(n)) for n >= 1 and base >= 2; 0 for n <= 1.
std::uint32_t CeilLogBase(std::size_t n, std::size_t base);

/// Clamps `v` into [lo, hi]. Requires lo <= hi.
double Clamp(double v, double lo, double hi);

/// \brief Compensated (Kahan) accumulator for summing many doubles.
class KahanSum {
 public:
  /// Adds `v` to the running sum.
  void Add(double v) {
    double y = v - compensation_;
    double t = sum_ + y;
    compensation_ = (t - sum_) - y;
    sum_ = t;
  }

  /// The current compensated total.
  double Total() const { return sum_; }

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

/// Returns prefix sums p of `values`: p[0] = 0, p[i] = sum of values[0..i).
/// Uses compensated summation. The returned vector has size values.size()+1.
std::vector<double> PrefixSums(const std::vector<double>& values);

/// Returns prefix sums of squares: p[i] = sum of values[j]^2 for j < i.
std::vector<double> PrefixSumsOfSquares(const std::vector<double>& values);

/// Returns the arithmetic mean of `values`; 0 for an empty vector.
double Mean(const std::vector<double>& values);

/// Returns the (population) variance of `values`; 0 for size < 2.
double Variance(const std::vector<double>& values);

}  // namespace dphist

#endif  // DPHIST_COMMON_MATH_UTIL_H_
