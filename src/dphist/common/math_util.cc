#include "dphist/common/math_util.h"

#include <bit>

namespace dphist {

std::size_t NextPowerOfTwo(std::size_t n) {
  if (n <= 1) {
    return 1;
  }
  return std::bit_ceil(n);
}

bool IsPowerOfTwo(std::size_t n) { return n != 0 && std::has_single_bit(n); }

std::uint32_t FloorLog2(std::size_t n) {
  if (n == 0) {
    return 0;
  }
  return static_cast<std::uint32_t>(std::bit_width(n) - 1);
}

std::uint32_t CeilLog2(std::size_t n) {
  if (n <= 1) {
    return 0;
  }
  return static_cast<std::uint32_t>(std::bit_width(n - 1));
}

std::uint32_t CeilLogBase(std::size_t n, std::size_t base) {
  if (n <= 1 || base < 2) {
    return 0;
  }
  std::uint32_t levels = 0;
  std::size_t reach = 1;
  while (reach < n) {
    // reach * base might overflow for adversarial inputs; detect and bail.
    if (reach > n / base + 1) {
      reach = n;
    } else {
      reach *= base;
    }
    ++levels;
  }
  return levels;
}

double Clamp(double v, double lo, double hi) {
  if (v < lo) {
    return lo;
  }
  if (v > hi) {
    return hi;
  }
  return v;
}

std::vector<double> PrefixSums(const std::vector<double>& values) {
  std::vector<double> prefix(values.size() + 1, 0.0);
  KahanSum acc;
  for (std::size_t i = 0; i < values.size(); ++i) {
    acc.Add(values[i]);
    prefix[i + 1] = acc.Total();
  }
  return prefix;
}

std::vector<double> PrefixSumsOfSquares(const std::vector<double>& values) {
  std::vector<double> prefix(values.size() + 1, 0.0);
  KahanSum acc;
  for (std::size_t i = 0; i < values.size(); ++i) {
    acc.Add(values[i] * values[i]);
    prefix[i + 1] = acc.Total();
  }
  return prefix;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) {
    return 0.0;
  }
  KahanSum acc;
  for (double v : values) {
    acc.Add(v);
  }
  return acc.Total() / static_cast<double>(values.size());
}

double Variance(const std::vector<double>& values) {
  if (values.size() < 2) {
    return 0.0;
  }
  const double mean = Mean(values);
  KahanSum acc;
  for (double v : values) {
    const double d = v - mean;
    acc.Add(d * d);
  }
  return acc.Total() / static_cast<double>(values.size());
}

}  // namespace dphist
