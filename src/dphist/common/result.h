#ifndef DPHIST_COMMON_RESULT_H_
#define DPHIST_COMMON_RESULT_H_

#include <cstdlib>
#include <optional>
#include <utility>

#include "dphist/common/status.h"

namespace dphist {

/// \brief Holds either a value of type `T` or a non-OK `Status`.
///
/// The usual usage pattern is:
/// \code
///   Result<Histogram> r = LoadHistogramCsv(path);
///   if (!r.ok()) { /* handle r.status() */ }
///   Histogram h = std::move(r).value();
/// \endcode
///
/// Accessing `value()` on an error result aborts the process; callers must
/// check `ok()` first (the same contract as RocksDB's `Status`-guarded
/// out-parameters and Arrow's `Result`).
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value)  // NOLINT(google-explicit-constructor): mirrors Arrow.
      : value_(std::move(value)) {}

  /// Constructs an error result from a non-OK status. Aborts if `status`
  /// is OK, since an OK result must carry a value.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    if (status_.ok()) {
      std::abort();
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  /// True iff a value is present.
  bool ok() const { return value_.has_value(); }

  /// The status: OK when a value is present.
  const Status& status() const { return status_; }

  /// Returns the held value; aborts if `!ok()`.
  const T& value() const& {
    CheckOk();
    return *value_;
  }

  /// Moves the held value out; aborts if `!ok()`.
  T value() && {
    CheckOk();
    return std::move(*value_);
  }

  /// Returns the held value or `fallback` when this result is an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::abort();
    }
  }

  std::optional<T> value_;
  Status status_;  // OK when value_ is set.
};

}  // namespace dphist

// Two-level paste so __LINE__ expands before concatenation; without the
// indirection every expansion shares the literal name
// `dphist_result_tmp___LINE__` and two uses in one scope collide.
#define DPHIST_RESULT_CONCAT_INNER_(a, b) a##b
#define DPHIST_RESULT_CONCAT_(a, b) DPHIST_RESULT_CONCAT_INNER_(a, b)

/// Assigns the value of a `Result<T>` expression to `lhs`, returning the
/// error status from the enclosing function when the result is an error.
#define DPHIST_ASSIGN_OR_RETURN(lhs, expr) \
  DPHIST_ASSIGN_OR_RETURN_IMPL_(           \
      DPHIST_RESULT_CONCAT_(dphist_result_tmp_, __LINE__), lhs, expr)

#define DPHIST_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) {                                    \
    return tmp.status();                              \
  }                                                   \
  lhs = std::move(tmp).value()

#endif  // DPHIST_COMMON_RESULT_H_
