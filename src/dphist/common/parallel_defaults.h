#ifndef DPHIST_COMMON_PARALLEL_DEFAULTS_H_
#define DPHIST_COMMON_PARALLEL_DEFAULTS_H_

#include <cstddef>

namespace dphist {

/// \brief The one size threshold below which a parallelizable stage stays
/// on its sequential path.
///
/// Both stages of a v-opt solve consult it — the absolute-cost matrix
/// build (`IntervalCostTable::Options::min_parallel_candidates`) and the
/// row-parallel dynamic program
/// (`VOptSolver::SolveOptions::min_parallel_candidates`) — as does the
/// serve layer's batched range-query fan-out. Sharing one constant keeps
/// the stages of a single solve from flipping strategies at different
/// candidate counts (they used to cut over at 128 and 256 respectively),
/// which made "is this run parallel?" depend on which stage you asked.
///
/// The value is the measured break-even region on the bench machines:
/// below ~256 independent work items, ThreadPool fork/join overhead
/// (dispatch + wake + barrier) dwarfs the per-item work of a DP row cell
/// or a Fenwick sweep column. Results are bit-identical on either path;
/// only wall clock changes, so tuning it is always safe.
inline constexpr std::size_t kDefaultMinParallelCandidates = 256;

}  // namespace dphist

#endif  // DPHIST_COMMON_PARALLEL_DEFAULTS_H_
