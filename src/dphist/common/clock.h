#ifndef DPHIST_COMMON_CLOCK_H_
#define DPHIST_COMMON_CLOCK_H_

#include <chrono>
#include <mutex>

namespace dphist {

/// \brief Injectable monotonic time source.
///
/// Production code reads wall time through a `Clock*` so tests can
/// substitute a `FakeClock` and exercise time-dependent policies (retry
/// backoff, per-batch deadlines, injected latency) without ever sleeping
/// wall-clock: a test that "waits" 10 seconds finishes in microseconds and
/// is exactly reproducible. The serving layer and the failpoint registry
/// both take their clock this way.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current monotonic time.
  virtual std::chrono::steady_clock::time_point Now() const = 0;

  /// Blocks (or pretends to) for `duration`.
  virtual void SleepFor(std::chrono::nanoseconds duration) = 0;

  /// The process-wide real clock (steady_clock + this_thread::sleep_for).
  /// Leaked singleton, same lifetime policy as ThreadPool::Global().
  static Clock& Real();
};

/// \brief A thread-safe manual clock: `Now()` returns a controlled instant
/// and `SleepFor` advances it instantly instead of blocking. Deterministic
/// by construction — two runs that issue the same sleeps read the same
/// times.
class FakeClock final : public Clock {
 public:
  /// Starts at `epoch` (default: the steady_clock epoch).
  explicit FakeClock(std::chrono::steady_clock::time_point epoch =
                         std::chrono::steady_clock::time_point{});

  std::chrono::steady_clock::time_point Now() const override;

  /// Advances the clock by `duration`; never blocks.
  void SleepFor(std::chrono::nanoseconds duration) override;

  /// Advances the clock without counting as a sleep.
  void Advance(std::chrono::nanoseconds duration);

  /// Total time "slept" via SleepFor since construction — what a test
  /// asserts a deterministic backoff schedule against.
  std::chrono::nanoseconds total_slept() const;

 private:
  mutable std::mutex mutex_;
  std::chrono::steady_clock::time_point now_;
  std::chrono::nanoseconds slept_{0};
};

}  // namespace dphist

#endif  // DPHIST_COMMON_CLOCK_H_
