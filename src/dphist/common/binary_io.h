#ifndef DPHIST_COMMON_BINARY_IO_H_
#define DPHIST_COMMON_BINARY_IO_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace dphist {
namespace binio {

/// \brief Shared little-endian byte codec primitives and the IEEE CRC-32,
/// used by every framed on-disk/on-wire format in the tree (the serve
/// journal and the net wire codec). Both formats promise the same
/// properties: integers are little-endian regardless of host endianness,
/// doubles travel as their raw IEEE-754 bits, strings are a u32 length
/// prefix plus bytes, and a frame is valid only when it fits AND its CRC
/// matches. Centralizing the primitives keeps those promises in one place.

/// IEEE CRC-32 (reflected, polynomial 0xEDB88320), slicing-by-8:
/// table[0] is the classic bytewise table, and table[k][b] extends a CRC
/// whose low byte is b by k more zero bytes, so eight input bytes fold
/// into eight independent lookups per iteration — several times the
/// bytewise throughput, which matters because every serve-path frame
/// (request and response) is CRC'd on the single event-loop thread.
/// Vendored instead of taking a zlib dependency: these codecs are the
/// only CRC users and the container may not ship zlib headers. The
/// produced values are the standard IEEE CRC-32, bit-identical to the
/// bytewise form (wire_codec_test pins known vectors).
inline const std::array<std::array<std::uint32_t, 256>, 8>& Crc32Tables() {
  static const std::array<std::array<std::uint32_t, 256>, 8> tables = [] {
    std::array<std::array<std::uint32_t, 256>, 8> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
      }
      t[0][i] = crc;
    }
    for (std::size_t k = 1; k < 8; ++k) {
      for (std::uint32_t i = 0; i < 256; ++i) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFFu];
      }
    }
    return t;
  }();
  return tables;
}

/// Bytewise table (kept for single-byte tail processing and any caller
/// that wants the classic form).
inline const std::array<std::uint32_t, 256>& Crc32Table() {
  return Crc32Tables()[0];
}

inline std::uint32_t Crc32(std::string_view bytes) {
  const auto& t = Crc32Tables();
  std::uint32_t crc = 0xFFFFFFFFu;
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(bytes.data());
  std::size_t n = bytes.size();
  while (n >= 8) {
    std::uint32_t lo;
    std::uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
    lo = __builtin_bswap32(lo);
    hi = __builtin_bswap32(hi);
#endif
    crc ^= lo;
    crc = t[7][crc & 0xFFu] ^ t[6][(crc >> 8) & 0xFFu] ^
          t[5][(crc >> 16) & 0xFFu] ^ t[4][crc >> 24] ^
          t[3][hi & 0xFFu] ^ t[2][(hi >> 8) & 0xFFu] ^
          t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  const auto& table = t[0];
  while (n-- > 0) {
    crc = (crc >> 8) ^ table[(crc ^ *p++) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

// --- encoding primitives (little-endian, append-to-string) ---

inline void PutU32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

inline void PutU64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

inline void PutF64(std::string& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

inline void PutStr(std::string& out, std::string_view s) {
  PutU32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s.data(), s.size());
}

// --- decoding primitives: advance a cursor, false on underflow ---

struct Cursor {
  std::string_view bytes;
  std::size_t pos = 0;

  bool Remaining(std::size_t n) const { return bytes.size() - pos >= n; }
};

inline bool GetU32(Cursor& in, std::uint32_t* v) {
  if (!in.Remaining(4)) return false;
  std::uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(in.bytes[in.pos + i]))
           << (8 * i);
  }
  in.pos += 4;
  *v = out;
  return true;
}

inline bool GetU64(Cursor& in, std::uint64_t* v) {
  if (!in.Remaining(8)) return false;
  std::uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(in.bytes[in.pos + i]))
           << (8 * i);
  }
  in.pos += 8;
  *v = out;
  return true;
}

inline bool GetF64(Cursor& in, double* v) {
  std::uint64_t bits = 0;
  if (!GetU64(in, &bits)) return false;
  std::memcpy(v, &bits, sizeof(*v));
  return true;
}

inline bool GetStr(Cursor& in, std::string* s) {
  std::uint32_t len = 0;
  if (!GetU32(in, &len) || !in.Remaining(len)) return false;
  s->assign(in.bytes.data() + in.pos, len);
  in.pos += len;
  return true;
}

}  // namespace binio
}  // namespace dphist

#endif  // DPHIST_COMMON_BINARY_IO_H_
