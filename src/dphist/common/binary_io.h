#ifndef DPHIST_COMMON_BINARY_IO_H_
#define DPHIST_COMMON_BINARY_IO_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace dphist {
namespace binio {

/// \brief Shared little-endian byte codec primitives and the IEEE CRC-32,
/// used by every framed on-disk/on-wire format in the tree (the serve
/// journal and the net wire codec). Both formats promise the same
/// properties: integers are little-endian regardless of host endianness,
/// doubles travel as their raw IEEE-754 bits, strings are a u32 length
/// prefix plus bytes, and a frame is valid only when it fits AND its CRC
/// matches. Centralizing the primitives keeps those promises in one place.

/// IEEE CRC-32 (reflected, polynomial 0xEDB88320), table-driven. Vendored
/// in ~15 lines instead of taking a zlib dependency: these codecs are the
/// only CRC users and the container may not ship zlib headers.
inline const std::array<std::uint32_t, 256>& Crc32Table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

inline std::uint32_t Crc32(std::string_view bytes) {
  const auto& table = Crc32Table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char c : bytes) {
    crc = (crc >> 8) ^ table[(crc ^ static_cast<unsigned char>(c)) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

// --- encoding primitives (little-endian, append-to-string) ---

inline void PutU32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

inline void PutU64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

inline void PutF64(std::string& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

inline void PutStr(std::string& out, std::string_view s) {
  PutU32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s.data(), s.size());
}

// --- decoding primitives: advance a cursor, false on underflow ---

struct Cursor {
  std::string_view bytes;
  std::size_t pos = 0;

  bool Remaining(std::size_t n) const { return bytes.size() - pos >= n; }
};

inline bool GetU32(Cursor& in, std::uint32_t* v) {
  if (!in.Remaining(4)) return false;
  std::uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(in.bytes[in.pos + i]))
           << (8 * i);
  }
  in.pos += 4;
  *v = out;
  return true;
}

inline bool GetU64(Cursor& in, std::uint64_t* v) {
  if (!in.Remaining(8)) return false;
  std::uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(in.bytes[in.pos + i]))
           << (8 * i);
  }
  in.pos += 8;
  *v = out;
  return true;
}

inline bool GetF64(Cursor& in, double* v) {
  std::uint64_t bits = 0;
  if (!GetU64(in, &bits)) return false;
  std::memcpy(v, &bits, sizeof(*v));
  return true;
}

inline bool GetStr(Cursor& in, std::string* s) {
  std::uint32_t len = 0;
  if (!GetU32(in, &len) || !in.Remaining(len)) return false;
  s->assign(in.bytes.data() + in.pos, len);
  in.pos += len;
  return true;
}

}  // namespace binio
}  // namespace dphist

#endif  // DPHIST_COMMON_BINARY_IO_H_
