#ifndef DPHIST_COMMON_THREAD_POOL_H_
#define DPHIST_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dphist {

/// \brief A fixed-size worker pool with a blocking fork/join `ParallelFor`.
///
/// dphist's workloads are embarrassingly parallel loops whose iterations are
/// *independent and deterministic*: repetitions of an experiment cell (each
/// driven by a pre-forked `Rng` stream), the per-prefix cells of one row of
/// the v-opt dynamic program, and the per-endpoint sweeps of the
/// absolute-cost builder. The pool therefore only offers bulk-synchronous
/// loops — no futures, no task graphs — which keeps the determinism contract
/// trivial to state: **a `ParallelFor` computes exactly what the equivalent
/// sequential loop computes, for any thread count and any scheduling**,
/// because every index writes to its own slot and the call does not return
/// until all indices ran.
///
/// Concurrency rules:
///  * A pool may be driven from several submitter threads at once; batches
///    interleave in the shared queue but each blocks only on its own work.
///  * A `ParallelFor` issued *from inside a worker of the same pool* (e.g.
///    a parallel `RunCell` repetition whose publisher parallelizes its
///    dynamic program on the global pool) runs inline on that worker. This
///    makes nested parallelism deadlock-free without a work-stealing
///    scheduler, at the cost of no extra speedup for the inner loop.
///  * With `thread_count() == 1` no worker threads exist and every loop
///    runs inline on the caller — the graceful sequential fallback.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers. `num_threads == 0` means
  /// `DefaultThreadCount()` (the `DPHIST_THREADS` env var, else the
  /// hardware concurrency). A count of 1 spawns no threads at all.
  explicit ThreadPool(std::size_t num_threads = 0);

  /// Joins all workers after draining queued tasks. Destroying a pool while
  /// another thread is inside `ParallelFor` on it is undefined behavior.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Degree of parallelism (>= 1). 1 means all loops run inline.
  std::size_t thread_count() const { return thread_count_; }

  /// Resolves the default pool size: `DPHIST_THREADS` when it parses as a
  /// positive integer (invalid or non-positive values are ignored),
  /// otherwise `std::thread::hardware_concurrency()`, never less than 1.
  static std::size_t DefaultThreadCount();

  /// The process-wide shared pool, sized with `DefaultThreadCount()` on
  /// first use. Benches and library internals default to this pool so a
  /// single `DPHIST_THREADS=k` controls the whole process.
  static ThreadPool& Global();

  /// Runs `body(i)` for every i in [begin, end) and blocks until all calls
  /// returned. Iterations must be independent; each is invoked exactly
  /// once. If any invocation throws, one of the thrown exceptions is
  /// rethrown on the calling thread after the loop completes. (dphist code
  /// reports errors by writing a `Status` into a per-index slot instead.)
  void ParallelFor(std::size_t begin, std::size_t end,
                   const std::function<void(std::size_t)>& body);

  /// Chunked variant: `body(chunk_begin, chunk_end)` over a partition of
  /// [begin, end) into at most `thread_count()` contiguous chunks of at
  /// least `min_chunk` indices. Use when per-chunk state (e.g. a scratch
  /// Fenwick tree) amortizes setup cost across iterations.
  void ParallelForChunks(
      std::size_t begin, std::size_t end, std::size_t min_chunk,
      const std::function<void(std::size_t, std::size_t)>& body);

  /// Enqueues one independent task and returns without waiting for it —
  /// the fire-and-forget primitive the net server's request handlers use
  /// (a handler signals its own completion, so a fork/join loop is the
  /// wrong shape). Tasks must not throw. Degenerate cases run `task`
  /// inline on the caller before returning: a single-threaded pool (no
  /// workers exist) and submission from one of this pool's own workers
  /// (blocking semantics elsewhere rely on workers never stalling behind
  /// their own queue). Callers needing completion signalling bake it into
  /// the task.
  void Submit(std::function<void()> task);

 private:
  void WorkerLoop();

  /// True when the calling thread must run loops inline: single-threaded
  /// pool, or the caller is one of this pool's own workers.
  bool MustRunInline() const;

  std::size_t thread_count_ = 1;
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  bool stopping_ = false;
};

}  // namespace dphist

#endif  // DPHIST_COMMON_THREAD_POOL_H_
