#include "dphist/common/clock.h"

#include <thread>

namespace dphist {

namespace {

class RealClock final : public Clock {
 public:
  std::chrono::steady_clock::time_point Now() const override {
    return std::chrono::steady_clock::now();
  }

  void SleepFor(std::chrono::nanoseconds duration) override {
    if (duration > std::chrono::nanoseconds::zero()) {
      std::this_thread::sleep_for(duration);
    }
  }
};

}  // namespace

Clock& Clock::Real() {
  static Clock* clock = new RealClock();
  return *clock;
}

FakeClock::FakeClock(std::chrono::steady_clock::time_point epoch)
    : now_(epoch) {}

std::chrono::steady_clock::time_point FakeClock::Now() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return now_;
}

void FakeClock::SleepFor(std::chrono::nanoseconds duration) {
  if (duration <= std::chrono::nanoseconds::zero()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  now_ += duration;
  slept_ += duration;
}

void FakeClock::Advance(std::chrono::nanoseconds duration) {
  std::lock_guard<std::mutex> lock(mutex_);
  now_ += duration;
}

std::chrono::nanoseconds FakeClock::total_slept() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slept_;
}

}  // namespace dphist
