#include "dphist/common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>

#include "dphist/common/env.h"
#include "dphist/obs/obs.h"
#include "dphist/testing/failpoint.h"

namespace dphist {

namespace {

// Set while a thread executes tasks for a pool; lets a nested ParallelFor
// on the same pool detect that blocking on the queue would deadlock.
thread_local const ThreadPool* current_worker_pool = nullptr;

}  // namespace

std::size_t ThreadPool::DefaultThreadCount() {
  // Unparseable, non-positive, or absurdly large values fall through to
  // the hardware default rather than silently serializing the process or
  // attempting to spawn billions of workers. GetEnvPositiveInt accepts
  // anything that fits std::size_t; the cap here is the thread pool's own
  // sanity bound on what can be a real thread count.
  constexpr std::size_t kMaxThreadCount = 65536;
  if (const auto parsed = GetEnvPositiveInt("DPHIST_THREADS")) {
    if (*parsed <= kMaxThreadCount) {
      return *parsed;
    }
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : static_cast<std::size_t>(hardware);
}

ThreadPool& ThreadPool::Global() {
  // Leaked on purpose: worker threads must outlive every static-destruction
  // user, and joining threads during process teardown is a classic
  // shutdown hazard. One pool per process, reclaimed by the OS.
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  thread_count_ = num_threads == 0 ? DefaultThreadCount() : num_threads;
  if (thread_count_ < 2) {
    return;  // Inline mode: no workers, no queue traffic.
  }
  workers_.reserve(thread_count_);
  for (std::size_t t = 0; t < thread_count_; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::WorkerLoop() {
  current_worker_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping_ and fully drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // Chaos hook: latency between dequeue and execution — perturbs chunk
    // scheduling without changing what any chunk computes, which is
    // exactly the determinism contract the chaos suite stresses.
    DPHIST_FAILPOINT("threadpool/task_queue");
    task();
  }
}

bool ThreadPool::MustRunInline() const {
  return thread_count_ < 2 || current_worker_pool == this;
}

void ThreadPool::Submit(std::function<void()> task) {
  if (MustRunInline()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.emplace_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::ParallelFor(std::size_t begin, std::size_t end,
                             const std::function<void(std::size_t)>& body) {
  ParallelForChunks(begin, end, /*min_chunk=*/1,
                    [&body](std::size_t chunk_begin, std::size_t chunk_end) {
                      for (std::size_t i = chunk_begin; i < chunk_end; ++i) {
                        body(i);
                      }
                    });
}

void ThreadPool::ParallelForChunks(
    std::size_t begin, std::size_t end, std::size_t min_chunk,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (begin >= end) {
    return;
  }
  const std::size_t n = end - begin;
  if (min_chunk == 0) {
    min_chunk = 1;
  }
  const std::size_t max_chunks = (n + min_chunk - 1) / min_chunk;
  const std::size_t num_chunks = std::min(max_chunks, thread_count_);
  // Counters are resolved once (static locals) so the disabled path costs
  // one branch per call, not a registry lookup.
  static obs::Counter& inline_loops =
      obs::Registry::Global().GetCounter("threadpool/inline_loops");
  static obs::Counter& batches =
      obs::Registry::Global().GetCounter("threadpool/batches");
  static obs::Counter& tasks_dispatched =
      obs::Registry::Global().GetCounter("threadpool/tasks_dispatched");
  if (num_chunks < 2 || MustRunInline()) {
    inline_loops.Increment();
    body(begin, end);
    return;
  }

  // Instrumentation is decided once per batch (not per chunk) and baked
  // into the dispatched tasks so an obs toggle mid-batch cannot tear the
  // batch's bookkeeping.
  const bool instrumented = obs::Enabled();
  batches.Increment();
  tasks_dispatched.Add(num_chunks);
  const auto dispatch_start = instrumented
                                  ? std::chrono::steady_clock::now()
                                  : std::chrono::steady_clock::time_point();

  // Per-batch join state, shared by the chunk tasks of this call only, so
  // concurrent ParallelFor calls from different submitter threads never
  // wait on each other's work.
  struct Batch {
    std::mutex mutex;
    std::condition_variable done;
    std::size_t remaining;
    std::exception_ptr error;
    // Summed wall time the chunks spent executing; with the batch wall
    // clock this yields the batch's worker utilization.
    std::atomic<std::int64_t> busy_ns{0};
  };
  Batch batch;
  batch.remaining = num_chunks;

  const std::size_t base = n / num_chunks;
  const std::size_t extra = n % num_chunks;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t chunk_begin = begin;
    for (std::size_t c = 0; c < num_chunks; ++c) {
      const std::size_t chunk_end =
          chunk_begin + base + (c < extra ? 1 : 0);
      queue_.emplace_back([&batch, &body, chunk_begin, chunk_end,
                           instrumented, dispatch_start] {
        const auto task_start = instrumented
                                    ? std::chrono::steady_clock::now()
                                    : std::chrono::steady_clock::time_point();
        if (instrumented) {
          obs::Registry::Global()
              .GetDistribution("threadpool/queue_wait_ms")
              .Record(std::chrono::duration<double, std::milli>(
                          task_start - dispatch_start)
                          .count());
        }
        std::exception_ptr error;
        try {
          body(chunk_begin, chunk_end);
        } catch (...) {
          error = std::current_exception();
        }
        if (instrumented) {
          batch.busy_ns.fetch_add(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - task_start)
                  .count(),
              std::memory_order_relaxed);
        }
        std::lock_guard<std::mutex> batch_lock(batch.mutex);
        if (error && !batch.error) {
          batch.error = error;
        }
        if (--batch.remaining == 0) {
          batch.done.notify_all();
        }
      });
      chunk_begin = chunk_end;
    }
  }
  work_available_.notify_all();

  std::unique_lock<std::mutex> lock(batch.mutex);
  batch.done.wait(lock, [&batch] { return batch.remaining == 0; });
  lock.unlock();
  if (instrumented) {
    const double wall_ns =
        static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                std::chrono::steady_clock::now() -
                                dispatch_start)
                                .count());
    if (wall_ns > 0.0) {
      // 1.0 = every dispatched chunk's worker was busy for the whole batch
      // (perfect overlap); low values expose dispatch overhead or skew.
      obs::Registry::Global()
          .GetDistribution("threadpool/utilization")
          .Record(static_cast<double>(batch.busy_ns.load(
                      std::memory_order_relaxed)) /
                  (wall_ns * static_cast<double>(num_chunks)));
    }
  }
  if (batch.error) {
    std::rethrow_exception(batch.error);
  }
}

}  // namespace dphist
