#ifndef DPHIST_COMMON_ENV_H_
#define DPHIST_COMMON_ENV_H_

#include <cstddef>
#include <optional>
#include <string>

namespace dphist {

/// Returns the value of environment variable `name`, or nullopt when the
/// variable is unset or empty.
std::optional<std::string> GetEnv(const char* name);

/// Parses `name` as a strictly positive decimal integer. Returns nullopt
/// when the variable is unset, empty, unparseable, zero, negative, has
/// trailing garbage, or overflows std::size_t (an absurd value like
/// 99999999999999999999 must fall back to the default, not saturate and be
/// accepted) — callers fall back to their built-in default rather than
/// silently misconfiguring. Strict: leading whitespace and '+' are
/// rejected, and the parse is locale-independent.
std::optional<std::size_t> GetEnvPositiveInt(const char* name);

}  // namespace dphist

#endif  // DPHIST_COMMON_ENV_H_
