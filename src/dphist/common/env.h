#ifndef DPHIST_COMMON_ENV_H_
#define DPHIST_COMMON_ENV_H_

#include <cstddef>
#include <optional>
#include <string>

namespace dphist {

/// Returns the value of environment variable `name`, or nullopt when the
/// variable is unset or empty.
std::optional<std::string> GetEnv(const char* name);

/// Parses `name` as a strictly positive integer. Returns nullopt when the
/// variable is unset, empty, unparseable, zero, or negative — callers fall
/// back to their built-in default rather than silently misconfiguring.
std::optional<std::size_t> GetEnvPositiveInt(const char* name);

}  // namespace dphist

#endif  // DPHIST_COMMON_ENV_H_
