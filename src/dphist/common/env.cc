#include "dphist/common/env.h"

#include <charconv>
#include <cstdlib>
#include <system_error>

namespace dphist {

std::optional<std::string> GetEnv(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') {
    return std::nullopt;
  }
  return std::string(value);
}

std::optional<std::size_t> GetEnvPositiveInt(const char* name) {
  const std::optional<std::string> value = GetEnv(name);
  if (!value.has_value()) {
    return std::nullopt;
  }
  // std::from_chars rather than strtol: no locale dependence, no errno
  // protocol to forget (the historical strtol path saturated out-of-range
  // values to LONG_MAX when errno went unchecked), and strict by default —
  // leading whitespace, '+', and hex are all rejected, not skipped.
  const char* first = value->data();
  const char* last = first + value->size();
  std::size_t parsed = 0;
  const auto [ptr, ec] = std::from_chars(first, last, parsed, 10);
  if (ec != std::errc{} || ptr != last || parsed == 0) {
    return std::nullopt;
  }
  return parsed;
}

}  // namespace dphist
