#include "dphist/common/env.h"

#include <cerrno>
#include <climits>
#include <cstdlib>

namespace dphist {

std::optional<std::string> GetEnv(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') {
    return std::nullopt;
  }
  return std::string(value);
}

std::optional<std::size_t> GetEnvPositiveInt(const char* name) {
  const std::optional<std::string> value = GetEnv(name);
  if (!value.has_value()) {
    return std::nullopt;
  }
  char* end = nullptr;
  errno = 0;
  const long parsed = std::strtol(value->c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0' || parsed <= 0 ||
      parsed == LONG_MAX) {
    return std::nullopt;
  }
  return static_cast<std::size_t>(parsed);
}

}  // namespace dphist
