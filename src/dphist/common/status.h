#ifndef DPHIST_COMMON_STATUS_H_
#define DPHIST_COMMON_STATUS_H_

#include <string>
#include <string_view>

namespace dphist {

/// \brief Error codes used across the dphist API.
///
/// dphist does not throw exceptions across public API boundaries; fallible
/// operations return a `Status` (or a `Result<T>`, see result.h) in the
/// style of RocksDB / Arrow.
enum class StatusCode : int {
  kOk = 0,
  /// A caller-supplied argument violated the function contract
  /// (e.g., non-positive epsilon, empty histogram, k > n).
  kInvalidArgument = 1,
  /// An internal invariant failed; indicates a bug in dphist itself.
  kInternal = 2,
  /// A referenced entity (file, registered algorithm, ...) was not found.
  kNotFound = 3,
  /// Input data could not be parsed (CSV loader).
  kParseError = 4,
  /// A finite resource is spent (privacy budget exhausted). Unlike
  /// kInvalidArgument this is an expected runtime outcome the serving
  /// layer reacts to (degrade to a cached release), not a caller bug.
  kResourceExhausted = 5,
  /// An operation ran out of time: the serving layer's retry loop stopped
  /// because finishing another attempt would overrun the caller's
  /// deadline. Carries the last underlying error in its message.
  kDeadlineExceeded = 6,
  /// A caller addressed a namespace it does not own (e.g. tenant A asking
  /// for a dataset registered under tenant B). Distinct from kNotFound so
  /// a cross-tenant probe is distinguishable from a typo'd dataset name in
  /// logs and tests — the serving layer must never silently re-route such
  /// a request to the other tenant's releases.
  kPermissionDenied = 7,
  /// Durable state is unrecoverably corrupt (a journal whose header or
  /// body fails validation beyond the tolerated torn tail). Unlike
  /// kParseError this refers to state the system itself wrote; replay
  /// refuses to guess rather than reconstruct a wrong ledger.
  kDataLoss = 8,
};

/// \brief Lightweight status object carrying a code and a human-readable
/// message. Cheap to copy in the OK case (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Returns an OK status.
  static Status Ok() { return Status(); }
  /// Returns an InvalidArgument status with the given message.
  static Status InvalidArgument(std::string_view message);
  /// Returns an Internal status with the given message.
  static Status Internal(std::string_view message);
  /// Returns a NotFound status with the given message.
  static Status NotFound(std::string_view message);
  /// Returns a ParseError status with the given message.
  static Status ParseError(std::string_view message);
  /// Returns a ResourceExhausted status with the given message.
  static Status ResourceExhausted(std::string_view message);
  /// Returns a DeadlineExceeded status with the given message.
  static Status DeadlineExceeded(std::string_view message);
  /// Returns a PermissionDenied status with the given message.
  static Status PermissionDenied(std::string_view message);
  /// Returns a DataLoss status with the given message.
  static Status DataLoss(std::string_view message);

  /// True iff the status is OK.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// The status code.
  StatusCode code() const { return code_; }
  /// The message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string_view message)
      : code_(code), message_(message) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Returns the canonical name of a status code ("OK", "InvalidArgument", ...).
std::string_view StatusCodeName(StatusCode code);

}  // namespace dphist

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define DPHIST_RETURN_IF_ERROR(expr)                  \
  do {                                                \
    ::dphist::Status dphist_status_tmp_ = (expr);     \
    if (!dphist_status_tmp_.ok()) {                   \
      return dphist_status_tmp_;                      \
    }                                                 \
  } while (false)

#endif  // DPHIST_COMMON_STATUS_H_
