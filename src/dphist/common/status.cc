#include "dphist/common/status.h"

namespace dphist {

Status Status::InvalidArgument(std::string_view message) {
  return Status(StatusCode::kInvalidArgument, message);
}

Status Status::Internal(std::string_view message) {
  return Status(StatusCode::kInternal, message);
}

Status Status::NotFound(std::string_view message) {
  return Status(StatusCode::kNotFound, message);
}

Status Status::ParseError(std::string_view message) {
  return Status(StatusCode::kParseError, message);
}

Status Status::ResourceExhausted(std::string_view message) {
  return Status(StatusCode::kResourceExhausted, message);
}

Status Status::DeadlineExceeded(std::string_view message) {
  return Status(StatusCode::kDeadlineExceeded, message);
}

Status Status::PermissionDenied(std::string_view message) {
  return Status(StatusCode::kPermissionDenied, message);
}

Status Status::DataLoss(std::string_view message) {
  return Status(StatusCode::kDataLoss, message);
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kPermissionDenied:
      return "PermissionDenied";
    case StatusCode::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}

}  // namespace dphist
