#ifndef DPHIST_SPARSE_SPARSE_HISTOGRAM_H_
#define DPHIST_SPARSE_SPARSE_HISTOGRAM_H_

/// \file
/// \brief Sparse histogram: sorted key -> count pairs over a domain whose
/// size d may vastly exceed the number of stored keys (d up to 2^63).
///
/// The dense `Histogram` materializes every bin, which is unusable for
/// high-cardinality domains (URLs, user IDs). `SparseHistogram` stores only
/// the keys with an explicit count; every other key implicitly holds 0.
/// Range sums share the half-open `[begin, end)` semantics of the dense
/// `Histogram::RangeSum`, answered in O(log k) by binary search over a
/// Kahan-compensated prefix-sum table of the stored entries.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dphist/common/result.h"
#include "dphist/common/status.h"

namespace dphist {
namespace sparse {

/// Largest domain size a SparseHistogram may span. Capped at 2^63 so that
/// any valid key or domain also fits in a signed 64-bit integer, keeping
/// arithmetic like `end - begin` free of unsigned wrap surprises in
/// downstream consumers.
inline constexpr std::uint64_t kMaxSparseDomain = 1ULL << 63;

/// One stored key with its count. Counts are doubles so that released
/// (noisy, possibly negative) histograms reuse the same representation as
/// true-count inputs.
struct SparseEntry {
  std::uint64_t key = 0;
  double count = 0.0;

  friend bool operator==(const SparseEntry& a, const SparseEntry& b) {
    return a.key == b.key && a.count == b.count;
  }
};

class SparseHistogram {
 public:
  /// An empty histogram over a zero-sized domain. Invalid for publishing;
  /// exists so the type is default-constructible for containers.
  SparseHistogram() = default;

  /// Validates and adopts `entries` over a domain of `domain_size` keys
  /// `[0, domain_size)`. Entries must be strictly increasing by key (sorted,
  /// no duplicates) and every key must be `< domain_size`. Returns a typed
  /// `kInvalidArgument` otherwise, or when `domain_size` is 0 or exceeds
  /// 2^63.
  static Result<SparseHistogram> Create(std::uint64_t domain_size,
                                        std::vector<SparseEntry> entries);

  /// Builds a sparse histogram from a multiset of raw record keys: each
  /// occurrence of a key contributes 1.0 to its count. Keys may arrive in
  /// any order with repeats. Rejects keys `>= domain_size`.
  static Result<SparseHistogram> FromRecords(std::uint64_t domain_size,
                                             std::vector<std::uint64_t> keys);

  std::uint64_t domain_size() const { return domain_size_; }

  /// The explicitly stored entries, strictly increasing by key.
  const std::vector<SparseEntry>& entries() const { return entries_; }

  /// Number of explicitly stored keys (k), not the domain size.
  std::size_t stored_keys() const { return entries_.size(); }

  /// The count at `key`: the stored value, or 0.0 when absent. Keys at or
  /// beyond the domain also read as 0.0 (matching a dense histogram padded
  /// with nothing).
  double CountFor(std::uint64_t key) const;

  /// Sum of all stored counts.
  double Total() const;

  /// Sum over the half-open key range `[begin, end)`. Requires
  /// `begin <= end <= domain_size()`; typed `kInvalidArgument` otherwise.
  Result<double> RangeSum(std::uint64_t begin, std::uint64_t end) const;

  /// `RangeSum` without bounds checking; caller guarantees
  /// `begin <= end <= domain_size()`.
  double RangeSumUnchecked(std::uint64_t begin, std::uint64_t end) const;

  friend bool operator==(const SparseHistogram& a, const SparseHistogram& b) {
    return a.domain_size_ == b.domain_size_ && a.entries_ == b.entries_;
  }

 private:
  SparseHistogram(std::uint64_t domain_size, std::vector<SparseEntry> entries);

  std::uint64_t domain_size_ = 0;
  std::vector<SparseEntry> entries_;
  // prefix_[i] = Kahan-compensated sum of entries_[0..i), size k + 1.
  std::vector<double> prefix_;
};

/// 64-bit FNV-1a fingerprint over the domain size, keys, and count bit
/// patterns. Fills the same role for sparse datasets as
/// `serve::FingerprintHistogram` does for dense ones: journal records carry
/// it so `ReleaseServer::Recover` can refuse replays against a different
/// dataset.
std::uint64_t FingerprintSparseHistogram(const SparseHistogram& histogram);

}  // namespace sparse
}  // namespace dphist

#endif  // DPHIST_SPARSE_SPARSE_HISTOGRAM_H_
