#include "dphist/sparse/sparse_publisher.h"

namespace dphist {
namespace sparse {

Status SparseHistogramPublisher::ValidatePublishArgs(
    const SparseHistogram& truth, double epsilon) {
  if (truth.domain_size() == 0) {
    return Status::InvalidArgument(
        "sparse publish: histogram has an empty domain");
  }
  if (!(epsilon > 0.0)) {
    return Status::InvalidArgument("sparse publish: epsilon must be > 0");
  }
  return Status::Ok();
}

}  // namespace sparse
}  // namespace dphist
