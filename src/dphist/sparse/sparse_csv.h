#ifndef DPHIST_SPARSE_SPARSE_CSV_H_
#define DPHIST_SPARSE_SPARSE_CSV_H_

/// \file
/// \brief CSV I/O for sparse histograms: one `key,count` line per stored
/// key, keys strictly increasing. Blank lines and `#` comments are
/// ignored, mirroring `data/csv`. Keys are parsed as exact unsigned 64-bit
/// integers (never through double, which rounds above 2^53); a key that
/// overflows uint64 is a typed `kInvalidArgument`.

#include <cstdint>
#include <string>

#include "dphist/common/result.h"
#include "dphist/common/status.h"
#include "dphist/sparse/sparse_histogram.h"

namespace dphist {
namespace sparse {

/// Loads `key,count` lines into a SparseHistogram over `domain_size` keys.
Result<SparseHistogram> LoadSparseHistogramCsv(const std::string& path,
                                               std::uint64_t domain_size);

/// Writes one `key,count` line per stored key.
Status SaveSparseHistogramCsv(const SparseHistogram& histogram,
                              const std::string& path);

}  // namespace sparse
}  // namespace dphist

#endif  // DPHIST_SPARSE_SPARSE_CSV_H_
