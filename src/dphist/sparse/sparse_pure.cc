#include "dphist/sparse/sparse_pure.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "dphist/common/thread_pool.h"
#include "dphist/obs/obs.h"
#include "dphist/random/distributions.h"

namespace dphist {
namespace sparse {
namespace {

obs::Counter& GapSampleBlockCounter() {
  static obs::Counter& counter =
      obs::Registry::Global().GetCounter("sparse/gap_sample_blocks");
  return counter;
}

// SplitMix64's golden-gamma increment — the same per-block substream
// derivation as the batched noise kernel: seed + (b + 1) * gamma expands
// (via the Rng constructor's SplitMix64 mixing) into well-separated
// independent streams for consecutive blocks.
constexpr std::uint64_t kGoldenGamma = 0x9E3779B97F4A7C15ULL;

// Expected geometric draws per gap-sampling block; blocks below this are
// not worth a fork. The partition must depend only on (absent, q), never
// the thread count, so releases are thread-invariant.
constexpr double kTargetDrawsPerBlock = 1024.0;
constexpr std::uint64_t kMaxGapBlocks = 256;

// The key of the j-th absent (count-zero) slot, in increasing key order,
// given the sorted observed keys. The number of absent keys strictly below
// observed key entries[i].key is entries[i].key - i, which is non-decreasing
// in i, so binary search finds the smallest i with entries[i].key - i > j;
// the answer is then j + i (i observed keys precede it).
std::uint64_t AbsentKeyAt(const std::vector<SparseEntry>& entries,
                          std::uint64_t j) {
  std::size_t lo = 0;
  std::size_t hi = entries.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (entries[mid].key - mid > j) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return j + lo;
}

}  // namespace

SparsePurePublisher::SparsePurePublisher(Options options)
    : options_(options) {}

double SparsePurePublisher::Threshold(std::uint64_t domain_size,
                                      std::uint64_t observed_keys,
                                      double epsilon) const {
  if (domain_size <= observed_keys) return 0.0;
  const double absent = static_cast<double>(domain_size - observed_keys);
  const double tau =
      std::log(absent / (2.0 * options_.expected_spurious)) / epsilon;
  return std::max(0.0, tau);
}

Result<SparseHistogram> SparsePurePublisher::Publish(
    const SparseHistogram& truth, double epsilon, Rng& rng,
    SparsePublishStats* stats) const {
  DPHIST_RETURN_IF_ERROR(ValidatePublishArgs(truth, epsilon));
  if (!(options_.expected_spurious > 0.0)) {
    return Status::InvalidArgument(
        "sparse_pure: expected_spurious must be > 0");
  }
  const std::vector<SparseEntry>& entries = truth.entries();
  const std::uint64_t d = truth.domain_size();
  const std::uint64_t k = entries.size();
  const double scale = 1.0 / epsilon;
  const double tau = Threshold(d, k, epsilon);

  // Observed keys: explicit Laplace noise, then the threshold test.
  std::vector<SparseEntry> kept;
  kept.reserve(entries.size());
  std::uint64_t suppressed = 0;
  for (const SparseEntry& entry : entries) {
    const double noisy = entry.count + SampleLaplace(rng, scale);
    if (noisy > tau) {
      kept.push_back(SparseEntry{entry.key, noisy});
    } else {
      ++suppressed;
    }
  }

  // Unobserved keys: each clears tau independently with probability
  // q = P[Lap(1/eps) > tau] = exp(-eps * tau) / 2 (tau >= 0), so walk the
  // absent slots with Geometric(q) gaps instead of touching each one. A
  // surviving key's value is tau plus the memoryless Laplace tail,
  // tau + Exp(eps) — distributed exactly as Lap(1/eps) given > tau.
  //
  // The walk is split into fixed blocks of absent slots, each drawn from
  // its own counter-derived substream. Per-slot independence makes the
  // blocked draw distribution-exact: restarting the geometric walk at a
  // block boundary enumerates the same iid Bernoulli(q) successes, just
  // from a different (still independent) stream. The partition depends
  // only on (absent, q) — sized for ~kTargetDrawsPerBlock expected
  // successes per block — so the release is identical at any thread
  // count; blocks fan out across the global pool.
  std::vector<SparseEntry> spurious;
  std::uint64_t gap_blocks = 0;
  const std::uint64_t absent = d - k;
  const double q = 0.5 * std::exp(-epsilon * tau);
  if (absent > 0 && q > 0.0) {
    const double expected_draws = static_cast<double>(absent) * q;
    gap_blocks = std::clamp<std::uint64_t>(
        static_cast<std::uint64_t>(expected_draws / kTargetDrawsPerBlock), 1,
        kMaxGapBlocks);
    gap_blocks = std::min(gap_blocks, absent);
    const std::uint64_t block_size = (absent + gap_blocks - 1) / gap_blocks;
    // One master draw from the caller's stream keeps the publisher a pure
    // function of (truth, epsilon, rng); every block substream derives
    // from it.
    const std::uint64_t master = rng.NextUint64();
    std::vector<std::vector<SparseEntry>> per_block(gap_blocks);
    auto sample_block = [&](std::size_t b) {
      Rng block_rng(master + (static_cast<std::uint64_t>(b) + 1) *
                                 kGoldenGamma);
      const std::uint64_t lo = static_cast<std::uint64_t>(b) * block_size;
      const std::uint64_t hi = std::min(absent, lo + block_size);
      std::vector<SparseEntry>& out = per_block[b];
      std::uint64_t next = lo;  // next candidate absent slot
      while (next < hi) {
        const std::int64_t gap = SampleGeometric(block_rng, q);
        const std::uint64_t remaining = hi - next;
        if (gap < 0 || static_cast<std::uint64_t>(gap) >= remaining) break;
        const std::uint64_t slot = next + static_cast<std::uint64_t>(gap);
        const double value = tau + SampleExponential(block_rng, epsilon);
        out.push_back(SparseEntry{AbsentKeyAt(entries, slot), value});
        next = slot + 1;
      }
    };
    ThreadPool& pool = ThreadPool::Global();
    if (pool.thread_count() > 1 && gap_blocks > 1) {
      pool.ParallelFor(0, gap_blocks,
                       [&](std::size_t b) { sample_block(b); });
    } else {
      for (std::uint64_t b = 0; b < gap_blocks; ++b) {
        sample_block(b);
      }
    }
    GapSampleBlockCounter().Add(gap_blocks);
    std::size_t total = 0;
    for (const auto& block : per_block) {
      total += block.size();
    }
    spurious.reserve(total);
    // Blocks cover increasing slot ranges and each block's output is
    // slot-sorted, so in-order concatenation is already sorted.
    for (auto& block : per_block) {
      spurious.insert(spurious.end(), block.begin(), block.end());
    }
  }

  // Merge the two sorted-by-key streams.
  std::vector<SparseEntry> released;
  released.reserve(kept.size() + spurious.size());
  std::merge(kept.begin(), kept.end(), spurious.begin(), spurious.end(),
             std::back_inserter(released),
             [](const SparseEntry& a, const SparseEntry& b) {
               return a.key < b.key;
             });

  if (stats != nullptr) {
    stats->released_keys = released.size();
    stats->suppressed_keys = suppressed;
    stats->spurious_keys = spurious.size();
    stats->threshold = tau;
    stats->gap_sample_blocks = gap_blocks;
  }
  return SparseHistogram::Create(d, std::move(released));
}

}  // namespace sparse
}  // namespace dphist
