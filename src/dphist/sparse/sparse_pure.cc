#include "dphist/sparse/sparse_pure.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "dphist/random/distributions.h"

namespace dphist {
namespace sparse {
namespace {

// The key of the j-th absent (count-zero) slot, in increasing key order,
// given the sorted observed keys. The number of absent keys strictly below
// observed key entries[i].key is entries[i].key - i, which is non-decreasing
// in i, so binary search finds the smallest i with entries[i].key - i > j;
// the answer is then j + i (i observed keys precede it).
std::uint64_t AbsentKeyAt(const std::vector<SparseEntry>& entries,
                          std::uint64_t j) {
  std::size_t lo = 0;
  std::size_t hi = entries.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (entries[mid].key - mid > j) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return j + lo;
}

}  // namespace

SparsePurePublisher::SparsePurePublisher(Options options)
    : options_(options) {}

double SparsePurePublisher::Threshold(std::uint64_t domain_size,
                                      std::uint64_t observed_keys,
                                      double epsilon) const {
  if (domain_size <= observed_keys) return 0.0;
  const double absent = static_cast<double>(domain_size - observed_keys);
  const double tau =
      std::log(absent / (2.0 * options_.expected_spurious)) / epsilon;
  return std::max(0.0, tau);
}

Result<SparseHistogram> SparsePurePublisher::Publish(
    const SparseHistogram& truth, double epsilon, Rng& rng,
    SparsePublishStats* stats) const {
  DPHIST_RETURN_IF_ERROR(ValidatePublishArgs(truth, epsilon));
  if (!(options_.expected_spurious > 0.0)) {
    return Status::InvalidArgument(
        "sparse_pure: expected_spurious must be > 0");
  }
  const std::vector<SparseEntry>& entries = truth.entries();
  const std::uint64_t d = truth.domain_size();
  const std::uint64_t k = entries.size();
  const double scale = 1.0 / epsilon;
  const double tau = Threshold(d, k, epsilon);

  // Observed keys: explicit Laplace noise, then the threshold test.
  std::vector<SparseEntry> kept;
  kept.reserve(entries.size());
  std::uint64_t suppressed = 0;
  for (const SparseEntry& entry : entries) {
    const double noisy = entry.count + SampleLaplace(rng, scale);
    if (noisy > tau) {
      kept.push_back(SparseEntry{entry.key, noisy});
    } else {
      ++suppressed;
    }
  }

  // Unobserved keys: each clears tau independently with probability
  // q = P[Lap(1/eps) > tau] = exp(-eps * tau) / 2 (tau >= 0), so walk the
  // d - k absent slots with Geometric(q) gaps instead of touching each one.
  // A surviving key's value is tau plus the memoryless Laplace tail,
  // tau + Exp(eps) — distributed exactly as Lap(1/eps) given > tau.
  std::vector<SparseEntry> spurious;
  const std::uint64_t absent = d - k;
  const double q = 0.5 * std::exp(-epsilon * tau);
  if (absent > 0 && q > 0.0) {
    std::uint64_t next = 0;  // next candidate absent slot
    while (next < absent) {
      const std::int64_t gap = SampleGeometric(rng, q);
      const std::uint64_t remaining = absent - next;
      if (gap < 0 || static_cast<std::uint64_t>(gap) >= remaining) break;
      const std::uint64_t slot = next + static_cast<std::uint64_t>(gap);
      const double value = tau + SampleExponential(rng, epsilon);
      spurious.push_back(SparseEntry{AbsentKeyAt(entries, slot), value});
      next = slot + 1;
    }
  }

  // Merge the two sorted-by-key streams.
  std::vector<SparseEntry> released;
  released.reserve(kept.size() + spurious.size());
  std::merge(kept.begin(), kept.end(), spurious.begin(), spurious.end(),
             std::back_inserter(released),
             [](const SparseEntry& a, const SparseEntry& b) {
               return a.key < b.key;
             });

  if (stats != nullptr) {
    stats->released_keys = released.size();
    stats->suppressed_keys = suppressed;
    stats->spurious_keys = spurious.size();
    stats->threshold = tau;
  }
  return SparseHistogram::Create(d, std::move(released));
}

}  // namespace sparse
}  // namespace dphist
