#include "dphist/sparse/sparse_csv.h"

#include <charconv>
#include <cstddef>
#include <fstream>
#include <string>
#include <system_error>
#include <vector>

#include "dphist/obs/export.h"

namespace dphist {
namespace sparse {
namespace {

std::string Trim(const std::string& s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && (s[begin] == ' ' || s[begin] == '\t' ||
                         s[begin] == '\r' || s[begin] == '\n')) {
    ++begin;
  }
  while (end > begin && (s[end - 1] == ' ' || s[end - 1] == '\t' ||
                         s[end - 1] == '\r' || s[end - 1] == '\n')) {
    --end;
  }
  return s.substr(begin, end - begin);
}

Result<std::uint64_t> ParseKey(const std::string& token, std::size_t line_no) {
  std::uint64_t value = 0;
  const char* begin = token.data();
  const char* end = begin + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec == std::errc::result_out_of_range) {
    return Status::InvalidArgument("sparse csv: key overflows uint64 on line " +
                                   std::to_string(line_no));
  }
  if (ec != std::errc() || ptr != end) {
    return Status::ParseError(
        "sparse csv: key is not a non-negative integer on line " +
        std::to_string(line_no));
  }
  return value;
}

Result<double> ParseCount(const std::string& token, std::size_t line_no) {
  try {
    std::size_t consumed = 0;
    const double value = std::stod(token, &consumed);
    if (consumed != token.size()) {
      return Status::ParseError("sparse csv: trailing characters on line " +
                                std::to_string(line_no));
    }
    return value;
  } catch (...) {
    return Status::ParseError("sparse csv: count is not a number on line " +
                              std::to_string(line_no));
  }
}

}  // namespace

Result<SparseHistogram> LoadSparseHistogramCsv(const std::string& path,
                                               std::uint64_t domain_size) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open " + path);
  }
  std::vector<SparseEntry> entries;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') {
      continue;
    }
    const std::size_t comma = trimmed.find(',');
    if (comma == std::string::npos) {
      return Status::ParseError("sparse csv: expected 'key,count' on line " +
                                std::to_string(line_no));
    }
    DPHIST_ASSIGN_OR_RETURN(const std::uint64_t key,
                            ParseKey(Trim(trimmed.substr(0, comma)), line_no));
    DPHIST_ASSIGN_OR_RETURN(
        const double count,
        ParseCount(Trim(trimmed.substr(comma + 1)), line_no));
    entries.push_back(SparseEntry{key, count});
  }
  return SparseHistogram::Create(domain_size, std::move(entries));
}

Status SaveSparseHistogramCsv(const SparseHistogram& histogram,
                              const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::NotFound("cannot open " + path + " for writing");
  }
  for (const SparseEntry& entry : histogram.entries()) {
    out << entry.key << "," << obs::JsonDouble(entry.count) << "\n";
  }
  if (!out) {
    return Status::Internal("write to " + path + " failed");
  }
  return Status::Ok();
}

}  // namespace sparse
}  // namespace dphist
