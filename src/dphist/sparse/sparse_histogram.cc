#include "dphist/sparse/sparse_histogram.h"

#include <algorithm>
#include <cstring>
#include <string>

#include "dphist/common/math_util.h"

namespace dphist {
namespace sparse {
namespace {

// Index of the first entry with key >= `key` (lower bound over the sorted
// entry list).
std::size_t LowerBound(const std::vector<SparseEntry>& entries,
                       std::uint64_t key) {
  const auto it = std::lower_bound(
      entries.begin(), entries.end(), key,
      [](const SparseEntry& entry, std::uint64_t k) { return entry.key < k; });
  return static_cast<std::size_t>(it - entries.begin());
}

}  // namespace

SparseHistogram::SparseHistogram(std::uint64_t domain_size,
                                 std::vector<SparseEntry> entries)
    : domain_size_(domain_size), entries_(std::move(entries)) {
  std::vector<double> counts;
  counts.reserve(entries_.size());
  for (const SparseEntry& entry : entries_) counts.push_back(entry.count);
  prefix_ = PrefixSums(counts);
}

Result<SparseHistogram> SparseHistogram::Create(
    std::uint64_t domain_size, std::vector<SparseEntry> entries) {
  if (domain_size == 0) {
    return Status::InvalidArgument("sparse histogram: domain size must be >= 1");
  }
  if (domain_size > kMaxSparseDomain) {
    return Status::InvalidArgument(
        "sparse histogram: domain size " + std::to_string(domain_size) +
        " exceeds the 2^63 maximum");
  }
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].key >= domain_size) {
      return Status::InvalidArgument(
          "sparse histogram: key " + std::to_string(entries[i].key) +
          " at entry " + std::to_string(i) + " is outside the domain of size " +
          std::to_string(domain_size));
    }
    if (i > 0 && entries[i].key <= entries[i - 1].key) {
      return Status::InvalidArgument(
          "sparse histogram: keys must be strictly increasing, but entry " +
          std::to_string(i) + " has key " + std::to_string(entries[i].key) +
          " after " + std::to_string(entries[i - 1].key));
    }
  }
  return SparseHistogram(domain_size, std::move(entries));
}

Result<SparseHistogram> SparseHistogram::FromRecords(
    std::uint64_t domain_size, std::vector<std::uint64_t> keys) {
  std::sort(keys.begin(), keys.end());
  std::vector<SparseEntry> entries;
  for (std::size_t i = 0; i < keys.size();) {
    std::size_t j = i;
    while (j < keys.size() && keys[j] == keys[i]) ++j;
    entries.push_back(SparseEntry{keys[i], static_cast<double>(j - i)});
    i = j;
  }
  return Create(domain_size, std::move(entries));
}

double SparseHistogram::CountFor(std::uint64_t key) const {
  const std::size_t i = LowerBound(entries_, key);
  if (i < entries_.size() && entries_[i].key == key) return entries_[i].count;
  return 0.0;
}

double SparseHistogram::Total() const { return prefix_.empty() ? 0.0 : prefix_.back(); }

Result<double> SparseHistogram::RangeSum(std::uint64_t begin,
                                         std::uint64_t end) const {
  if (begin > end || end > domain_size_) {
    return Status::InvalidArgument(
        "sparse histogram: range [" + std::to_string(begin) + ", " +
        std::to_string(end) + ") is invalid for domain size " +
        std::to_string(domain_size_));
  }
  return RangeSumUnchecked(begin, end);
}

double SparseHistogram::RangeSumUnchecked(std::uint64_t begin,
                                          std::uint64_t end) const {
  const std::size_t lo = LowerBound(entries_, begin);
  const std::size_t hi = LowerBound(entries_, end);
  return prefix_[hi] - prefix_[lo];
}

std::uint64_t FingerprintSparseHistogram(const SparseHistogram& histogram) {
  // FNV-1a over the domain size, then each (key, count-bit-pattern) pair —
  // the same construction as serve::FingerprintHistogram, extended with the
  // key stream so permuting counts across keys changes the fingerprint.
  std::uint64_t hash = 1469598103934665603ULL;
  const auto mix = [&hash](const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      hash ^= bytes[i];
      hash *= 1099511628211ULL;
    }
  };
  const std::uint64_t domain = histogram.domain_size();
  mix(&domain, sizeof(domain));
  for (const SparseEntry& entry : histogram.entries()) {
    mix(&entry.key, sizeof(entry.key));
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(entry.count), "double must be 64-bit");
    std::memcpy(&bits, &entry.count, sizeof(bits));
    mix(&bits, sizeof(bits));
  }
  return hash;
}

}  // namespace sparse
}  // namespace dphist
