#ifndef DPHIST_SPARSE_SPARSE_PURE_H_
#define DPHIST_SPARSE_SPARSE_PURE_H_

/// \file
/// \brief Pure-epsilon sparse histogram release after Kerschbaum, Lee &
/// Wu, "Optimal Pure Differentially Private Sparse Histograms in
/// Near-Linear Deterministic Time".
///
/// Conceptually the mechanism adds Lap(1/eps) to EVERY key of the domain
/// (observed or not) and releases the keys whose noisy count clears a
/// threshold tau — exactly the dense identity-Laplace release followed by
/// thresholding, so it inherits pure eps-DP by post-processing. The point
/// of the paper is doing this without touching the d - k unobserved keys:
///
///  * observed keys get explicit Laplace noise and the threshold test;
///  * the unobserved keys that would have crossed tau are sampled directly.
///    Each zero key independently clears tau with probability
///    q = exp(-eps * tau) / 2, so the gaps between released zero keys are
///    Geometric(q); a released zero key's value is tau + Exp(eps) by the
///    memorylessness of the Laplace tail. The j-th absent key is recovered
///    from the sorted observed keys by binary search in O(log k).
///
/// The sampled release is identical *in distribution* to the brute-force
/// dense construction, which the test battery checks exactly on small
/// domains. Expected running time is O(k log k + s) for k observed keys
/// and s expected spurious releases — near-linear in the data, independent
/// of d.
///
/// The threshold is tau = max(0, ln((d - k) / (2 s)) / eps), calibrated so
/// the expected number of spurious zero-count releases is at most
/// s = `Options::expected_spurious`. When d - k < 2 s the clamp at 0
/// applies and every zero key survives with probability 1/2.

#include <cstdint>

#include "dphist/sparse/sparse_publisher.h"

namespace dphist {
namespace sparse {

class SparsePurePublisher : public SparseHistogramPublisher {
 public:
  struct Options {
    /// Expected number of spuriously released zero-count keys per
    /// publication; the knob trading release size against per-key bias.
    double expected_spurious = 1.0;
  };

  SparsePurePublisher() = default;
  explicit SparsePurePublisher(Options options);

  std::string name() const override { return "sparse_pure"; }

  /// The threshold the mechanism will use for a domain of size
  /// `domain_size` with `observed_keys` stored keys. Exposed so tests and
  /// docs can state the bound without re-deriving it.
  double Threshold(std::uint64_t domain_size, std::uint64_t observed_keys,
                   double epsilon) const;

  Result<SparseHistogram> Publish(const SparseHistogram& truth, double epsilon,
                                  Rng& rng,
                                  SparsePublishStats* stats) const override;
  using SparseHistogramPublisher::Publish;

 private:
  Options options_;
};

}  // namespace sparse
}  // namespace dphist

#endif  // DPHIST_SPARSE_SPARSE_PURE_H_
