#include "dphist/sparse/unknown_domain.h"

#include <cmath>
#include <utility>
#include <vector>

#include "dphist/random/distributions.h"

namespace dphist {
namespace sparse {

UnknownDomainPublisher::UnknownDomainPublisher(Options options)
    : options_(options) {}

double UnknownDomainPublisher::Threshold(double epsilon) const {
  return 1.0 + std::log(1.0 / (2.0 * options_.delta)) / epsilon;
}

Status UnknownDomainPublisher::AccountCharge(BudgetAccountant& accountant,
                                             double epsilon,
                                             std::string label) const {
  return accountant.ChargeSequential(epsilon, options_.delta,
                                     std::move(label));
}

Result<SparseHistogram> UnknownDomainPublisher::Publish(
    const SparseHistogram& truth, double epsilon, Rng& rng,
    SparsePublishStats* stats) const {
  DPHIST_RETURN_IF_ERROR(ValidatePublishArgs(truth, epsilon));
  if (!(options_.delta > 0.0) || options_.delta > 0.5) {
    return Status::InvalidArgument(
        "unknown_domain: delta must lie in (0, 0.5]");
  }
  const double scale = 1.0 / epsilon;
  const double tau = Threshold(epsilon);

  // Only observed keys exist as far as this mechanism is concerned; a key
  // with a non-positive count is indistinguishable from an absent one and
  // must never be released (releasing it would leak that the key was in
  // the input at all).
  std::vector<SparseEntry> released;
  std::uint64_t suppressed = 0;
  for (const SparseEntry& entry : truth.entries()) {
    if (!(entry.count > 0.0)) continue;
    const double noisy = entry.count + SampleLaplace(rng, scale);
    if (noisy > tau) {
      released.push_back(SparseEntry{entry.key, noisy});
    } else {
      ++suppressed;
    }
  }

  if (stats != nullptr) {
    stats->released_keys = released.size();
    stats->suppressed_keys = suppressed;
    stats->spurious_keys = 0;
    stats->threshold = tau;
  }
  return SparseHistogram::Create(truth.domain_size(), std::move(released));
}

}  // namespace sparse
}  // namespace dphist
