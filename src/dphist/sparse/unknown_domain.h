#ifndef DPHIST_SPARSE_UNKNOWN_DOMAIN_H_
#define DPHIST_SPARSE_UNKNOWN_DOMAIN_H_

/// \file
/// \brief Stability-based unknown-domain release after Rogers, "A Unifying
/// Privacy Analysis Framework for Unknown Domain Algorithms".
///
/// When even the key set is private (the domain is unknown or unbounded),
/// spuriously releasing an unobserved key is impossible — the mechanism
/// never learns such keys exist. Only observed keys (true count >= 1) get
/// Laplace noise, and a key is released iff its noisy count clears
///
///   tau = 1 + ln(1 / (2 delta)) / eps.
///
/// A key backed by a single record (the differing record between
/// neighboring datasets) then survives with probability
/// P[1 + Lap(1/eps) > tau] = delta exactly, which is the only way the
/// released KEY SET can differ between neighbors; released values are
/// eps-DP by the usual Laplace argument. Net: (eps, delta)-DP, with the
/// delta tracked through `BudgetAccountant`'s delta ledger.

#include "dphist/common/result.h"
#include "dphist/common/status.h"
#include "dphist/privacy/budget.h"
#include "dphist/sparse/sparse_publisher.h"

namespace dphist {
namespace sparse {

class UnknownDomainPublisher : public SparseHistogramPublisher {
 public:
  struct Options {
    /// The delta of the (eps, delta) guarantee: the probability that the
    /// presence of a single-record key leaks into the released key set.
    /// Must lie in (0, 0.5].
    double delta = 1e-9;
  };

  UnknownDomainPublisher() = default;
  explicit UnknownDomainPublisher(Options options);

  std::string name() const override { return "unknown_domain"; }

  double delta() const { return options_.delta; }

  /// The release threshold tau = 1 + ln(1 / (2 delta)) / eps.
  double Threshold(double epsilon) const;

  /// Charges this mechanism's full (epsilon, delta) cost to `accountant`
  /// as one sequential composition step. Callers that publish through the
  /// serve path get this threaded automatically; standalone callers use it
  /// to keep their ledgers honest about the delta.
  Status AccountCharge(BudgetAccountant& accountant, double epsilon,
                       std::string label) const;

  Result<SparseHistogram> Publish(const SparseHistogram& truth, double epsilon,
                                  Rng& rng,
                                  SparsePublishStats* stats) const override;
  using SparseHistogramPublisher::Publish;

 private:
  Options options_;
};

}  // namespace sparse
}  // namespace dphist

#endif  // DPHIST_SPARSE_UNKNOWN_DOMAIN_H_
