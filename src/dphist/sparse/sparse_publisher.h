#ifndef DPHIST_SPARSE_SPARSE_PUBLISHER_H_
#define DPHIST_SPARSE_SPARSE_PUBLISHER_H_

/// \file
/// \brief Interface for differentially private sparse histogram publishers.
///
/// Mirrors `HistogramPublisher` for the sparse representation. The dense
/// interface cannot carry a domain size d independent of the materialized
/// bin count, so sparse mechanisms get their own base class; the registry
/// exposes both families side by side.

#include <cstdint>
#include <string>

#include "dphist/common/result.h"
#include "dphist/common/status.h"
#include "dphist/random/rng.h"
#include "dphist/sparse/sparse_histogram.h"

namespace dphist {
namespace sparse {

/// Per-publication observability a mechanism reports back to its caller.
/// The registry's instrumentation decorator turns these into obs counters;
/// tests read them directly.
struct SparsePublishStats {
  /// Keys present in the release.
  std::uint64_t released_keys = 0;
  /// Observed keys whose noisy count fell below the threshold.
  std::uint64_t suppressed_keys = 0;
  /// Released keys whose true count was zero (SparsePure only; the
  /// unknown-domain mechanism never releases an unobserved key).
  std::uint64_t spurious_keys = 0;
  /// The suppression threshold tau the mechanism used.
  double threshold = 0.0;
  /// Independent gap-sampling blocks the spurious-key draw was split into
  /// (SparsePure only; 0 when no spurious draw ran). The block partition
  /// depends only on the domain and the threshold — never on the thread
  /// count — so releases are thread-invariant.
  std::uint64_t gap_sample_blocks = 0;
};

class SparseHistogramPublisher {
 public:
  virtual ~SparseHistogramPublisher() = default;

  virtual std::string name() const = 0;

  /// Publishes a differentially private release of `truth` under privacy
  /// parameter `epsilon`, reporting per-run observability into `*stats`
  /// when `stats` is non-null. The release is itself a SparseHistogram over
  /// the same domain; released counts are noisy and may be fractional.
  virtual Result<SparseHistogram> Publish(const SparseHistogram& truth,
                                          double epsilon, Rng& rng,
                                          SparsePublishStats* stats) const = 0;

  /// Convenience overload without stats.
  Result<SparseHistogram> Publish(const SparseHistogram& truth, double epsilon,
                                  Rng& rng) const {
    return Publish(truth, epsilon, rng, nullptr);
  }

 protected:
  /// Shared argument validation: rejects a zero-sized domain and
  /// non-positive epsilon with a typed `kInvalidArgument`.
  static Status ValidatePublishArgs(const SparseHistogram& truth,
                                    double epsilon);
};

}  // namespace sparse
}  // namespace dphist

#endif  // DPHIST_SPARSE_SPARSE_PUBLISHER_H_
