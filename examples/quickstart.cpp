// Quickstart: publish a differentially private histogram with NoiseFirst.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <vector>

#include "dphist/algorithms/noise_first.h"
#include "dphist/hist/histogram.h"
#include "dphist/random/rng.h"

int main() {
  // The sensitive data: counts of records per unit bin (e.g., how many
  // patients fall in each age bracket).
  dphist::Histogram truth({12, 18, 25, 24, 26, 25, 31, 48, 72, 81,
                           79, 74, 50, 33, 21, 15, 11, 8, 5, 2});

  // Every randomized API takes an explicit generator: fix the seed and the
  // whole release is reproducible.
  dphist::Rng rng(/*seed=*/42);

  // NoiseFirst: spend the whole budget on Laplace noise, then merge bins by
  // the v-optimal dynamic program as free post-processing.
  dphist::NoiseFirst publisher;
  const double epsilon = 0.5;

  dphist::NoiseFirst::Details details;
  auto released = publisher.PublishWithDetails(truth, epsilon, rng, &details);
  if (!released.ok()) {
    std::fprintf(stderr, "publish failed: %s\n",
                 released.status().ToString().c_str());
    return 1;
  }

  std::printf("epsilon = %.2f, chosen buckets k* = %zu\n", epsilon,
              details.chosen_buckets);
  std::printf("%-5s %-10s %-10s\n", "bin", "true", "released");
  for (std::size_t i = 0; i < truth.size(); ++i) {
    std::printf("%-5zu %-10.0f %-10.2f\n", i, truth.count(i),
                released.value().count(i));
  }

  // Range queries run against the released histogram — no further privacy
  // cost (post-processing).
  const double teens = released.value().RangeSum(13, 20).value_or(0.0);
  std::printf("\nreleased count in bins [13, 20): %.2f (true %.0f)\n", teens,
              truth.RangeSum(13, 20).value_or(0.0));
  return 0;
}
