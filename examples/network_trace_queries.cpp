// Scenario: a network operator releases a private histogram of per-host
// connection counts so analysts can run arbitrary range queries later
// (e.g., "how many connections hit subnet [a, b)?") without further
// privacy cost.
//
// Demonstrates: choosing between NoiseFirst and StructureFirst by the
// expected query profile, and measuring both against the true trace.

#include <cstdio>
#include <vector>

#include "dphist/algorithms/noise_first.h"
#include "dphist/algorithms/structure_first.h"
#include "dphist/data/generators.h"
#include "dphist/metrics/metrics.h"
#include "dphist/query/workload.h"
#include "dphist/random/rng.h"

namespace {

void Report(const char* label, const dphist::Histogram& truth,
            const dphist::Histogram& released,
            const std::vector<dphist::RangeQuery>& queries) {
  auto error = dphist::EvaluateWorkload(truth, released, queries);
  if (!error.ok()) {
    std::fprintf(stderr, "evaluation failed\n");
    return;
  }
  std::printf("  %-16s mae=%10.2f  mse=%14.2f  max=%10.2f\n", label,
              error.value().mean_absolute, error.value().mean_squared,
              error.value().max_absolute);
}

}  // namespace

int main() {
  const dphist::Dataset trace = dphist::MakeNetTrace(2048, /*seed=*/99);
  const std::size_t n = trace.histogram.size();
  const double epsilon = 0.05;

  dphist::Rng rng(17);
  dphist::NoiseFirst noise_first;
  dphist::StructureFirst structure_first;

  dphist::Rng nf_rng = rng.Fork();
  dphist::Rng sf_rng = rng.Fork();
  auto nf_release = noise_first.Publish(trace.histogram, epsilon, nf_rng);
  auto sf_release = structure_first.Publish(trace.histogram, epsilon, sf_rng);
  if (!nf_release.ok() || !sf_release.ok()) {
    std::fprintf(stderr, "publish failed\n");
    return 1;
  }

  dphist::Rng workload_rng(23);
  auto short_queries =
      dphist::FixedLengthWorkload(n, 4, 500, workload_rng).value_or({});
  auto long_queries =
      dphist::FixedLengthWorkload(n, n / 4, 500, workload_rng).value_or({});

  std::printf("network trace: n=%zu hosts, epsilon=%g\n\n", n, epsilon);
  std::printf("short queries (4 hosts):\n");
  Report("noise_first", trace.histogram, nf_release.value(), short_queries);
  Report("structure_first", trace.histogram, sf_release.value(),
         short_queries);
  std::printf("\nlong queries (%zu hosts):\n", n / 4);
  Report("noise_first", trace.histogram, nf_release.value(), long_queries);
  Report("structure_first", trace.histogram, sf_release.value(),
         long_queries);

  std::printf("\nrule of thumb from the paper: prefer NoiseFirst when the\n"
              "workload is dominated by short ranges or epsilon is large;\n"
              "prefer StructureFirst for long ranges at strict budgets.\n");
  return 0;
}
