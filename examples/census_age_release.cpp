// Scenario: a census bureau wants to publish the national age histogram
// under a strict privacy budget, with an auditable composition ledger and
// public-knowledge post-processing (ages counts are non-negative integers
// and the population total is public).
//
// Demonstrates: StructureFirst end-to-end, BudgetAccountant, postprocess,
// CSV export.

#include <cstdio>
#include <string>

#include "dphist/algorithms/postprocess.h"
#include "dphist/algorithms/structure_first.h"
#include "dphist/data/csv.h"
#include "dphist/data/generators.h"
#include "dphist/metrics/metrics.h"
#include "dphist/privacy/budget.h"
#include "dphist/random/rng.h"

int main() {
  const dphist::Dataset census = dphist::MakeAge(/*seed=*/2026);
  const double epsilon = 0.1;

  dphist::StructureFirst::Options options;
  options.num_buckets = 12;  // e.g., publish ~12 age brackets
  options.structure_budget_ratio = 0.5;
  dphist::StructureFirst publisher(options);

  dphist::Rng rng(7);
  dphist::StructureFirst::Details details;
  auto released = publisher.PublishWithDetails(census.histogram, epsilon,
                                               rng, &details);
  if (!released.ok()) {
    std::fprintf(stderr, "publish failed: %s\n",
                 released.status().ToString().c_str());
    return 1;
  }

  // Auditable ledger mirroring the algorithm's internal composition.
  dphist::BudgetAccountant budget(epsilon);
  for (std::size_t t = 0; t + 1 < details.num_buckets; ++t) {
    (void)budget.ChargeSequential(
        details.structure_epsilon /
            static_cast<double>(details.num_buckets - 1),
        "em cut " + std::to_string(t));
  }
  for (std::size_t b = 0; b < details.num_buckets; ++b) {
    (void)budget.ChargeParallel(details.count_epsilon, "bucket sums",
                                "bucket " + std::to_string(b));
  }
  std::printf("%s\n", budget.ToString().c_str());

  // Public knowledge: counts are non-negative; the total population is a
  // published constant. Both are free post-processing.
  dphist::Histogram cleaned = dphist::NormalizeTotal(
      dphist::ClampNonNegative(released.value()), census.histogram.Total());
  cleaned = dphist::RoundToIntegers(cleaned);

  auto kl = dphist::KlDivergence(census.histogram, cleaned);
  std::printf("published %zu age brackets; cuts at:", details.num_buckets);
  for (std::size_t cut : details.cuts) {
    std::printf(" %zu", cut);
  }
  std::printf("\nKL(true || released) = %.6f\n", kl.value_or(-1.0));

  const std::string out_path = "census_age_release.csv";
  if (dphist::SaveHistogramCsv(cleaned, out_path).ok()) {
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}
