// Scenario: release differentially private quantiles (median, quartiles)
// of a numeric attribute. The standard recipe: publish a DP histogram of
// the attribute, post-process its CDF to be monotone (free), and read the
// quantiles off the private CDF — all further analysis is post-processing.
//
// Demonstrates: Boost (good prefix-sum accuracy), isotonic post-processing
// on the CDF, and quantile extraction, against the true quantiles.

#include <cstdio>
#include <vector>

#include "dphist/algorithms/boost_tree.h"
#include "dphist/algorithms/postprocess.h"
#include "dphist/data/generators.h"
#include "dphist/random/rng.h"

namespace {

// Returns the smallest bin whose (normalized) CDF reaches `q`.
std::size_t QuantileBin(const dphist::Histogram& histogram, double q) {
  const double total = histogram.Total();
  double cumulative = 0.0;
  for (std::size_t i = 0; i < histogram.size(); ++i) {
    cumulative += histogram.count(i);
    if (cumulative >= q * total) {
      return i;
    }
  }
  return histogram.size() - 1;
}

// Builds the prefix-sum (CDF) histogram of a count histogram.
dphist::Histogram CdfOf(const dphist::Histogram& histogram) {
  std::vector<double> cdf(histogram.size(), 0.0);
  double running = 0.0;
  for (std::size_t i = 0; i < histogram.size(); ++i) {
    running += histogram.count(i);
    cdf[i] = running;
  }
  return dphist::Histogram(std::move(cdf));
}

// Inverts a CDF histogram back to per-bin counts.
dphist::Histogram CountsOf(const dphist::Histogram& cdf) {
  std::vector<double> counts(cdf.size(), 0.0);
  double previous = 0.0;
  for (std::size_t i = 0; i < cdf.size(); ++i) {
    counts[i] = cdf.count(i) - previous;
    previous = cdf.count(i);
  }
  return dphist::Histogram(std::move(counts));
}

}  // namespace

int main() {
  const dphist::Dataset census = dphist::MakeAge(/*seed=*/7);
  const double epsilon = 0.05;

  dphist::Rng rng(11);
  dphist::BoostTree publisher;  // hierarchy: accurate prefix sums
  auto released = publisher.Publish(census.histogram, epsilon, rng);
  if (!released.ok()) {
    std::fprintf(stderr, "publish failed: %s\n",
                 released.status().ToString().c_str());
    return 1;
  }

  // Post-processing: a CDF is non-decreasing; project the noisy CDF onto
  // the monotone cone (free, and provably never hurts in L2), then map
  // back to non-negative counts.
  const dphist::Histogram noisy_cdf = CdfOf(released.value());
  const dphist::Histogram monotone_cdf =
      dphist::IsotonicNonDecreasing(noisy_cdf);
  const dphist::Histogram cleaned = dphist::ClampNonNegative(
      CountsOf(monotone_cdf));

  std::printf("DP quantiles of the age distribution (epsilon = %g):\n\n",
              epsilon);
  std::printf("%-12s %-8s %-8s\n", "quantile", "true", "private");
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const std::size_t true_bin = QuantileBin(census.histogram, q);
    const std::size_t private_bin = QuantileBin(cleaned, q);
    std::printf("p%-11.0f %-8zu %-8zu\n", q * 100, true_bin, private_bin);
  }
  std::printf("\n(each value is an age in years; the private quantiles are\n"
              "post-processed from one DP histogram release, so reading any\n"
              "number of quantiles costs no extra privacy budget)\n");
  return 0;
}
