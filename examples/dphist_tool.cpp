// dphist_tool — command-line front end for the library, so the algorithms
// can be used on real CSV histograms without writing C++.
//
// Subcommands:
//   generate <age|nettrace|searchlogs|social> <out.csv> [--n N] [--seed S]
//   publish  <algorithm> <epsilon> <in.csv> <out.csv> [--seed S]
//   evaluate <truth.csv> <released.csv> [--queries Q] [--seed S]
//   serve    <algorithm> <epsilon> <in.csv> [--budget E] [--batches B]
//            [--queries Q] [--seed S] [--journal DIR] [--shards N]
//            [--tenant NAME] [--listen PORT] [--max-inflight N]
//   query    [--host H] [--port P] [--codec binary|json] [--publisher A]
//            [--epsilon E] [--seed S] [--queries Q] [--workload-seed S]
//            [--tenant NAME] [--out FILE]
//   list
//
// Exit code 0 on success; errors go to stderr.

#include <charconv>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "dphist/algorithms/identity_geometric.h"
#include "dphist/algorithms/identity_laplace.h"
#include "dphist/algorithms/noise_first.h"
#include "dphist/algorithms/registry.h"
#include "dphist/algorithms/structure_first.h"
#include "dphist/data/csv.h"
#include "dphist/data/generators.h"
#include "dphist/metrics/metrics.h"
#include "dphist/net/client.h"
#include "dphist/net/server.h"
#include "dphist/net/wire_codec.h"
#include "dphist/obs/export.h"
#include "dphist/query/workload.h"
#include "dphist/random/rng.h"
#include "dphist/serve/journal.h"
#include "dphist/serve/release_server.h"
#include "dphist/sparse/sparse_csv.h"
#include "dphist/sparse/sparse_pure.h"
#include "dphist/sparse/unknown_domain.h"

namespace {

// serve --listen runs until one of these arrives.
volatile std::sig_atomic_t g_stop_requested = 0;
void HandleStopSignal(int) { g_stop_requested = 1; }

struct Flags {
  std::size_t n = 1024;
  std::uint64_t seed = 42;
  std::size_t queries = 500;
  double budget = 1.0;
  std::size_t batches = 8;
  // Serve durability/tenancy knobs. An empty journal dir falls back to
  // DPHIST_JOURNAL_DIR; still empty means in-memory serving. Shards 0
  // defers to DPHIST_SERVE_SHARDS, then the built-in default.
  std::string journal_dir;
  std::size_t shards = 0;
  std::string tenant = "default";
  // Network front-end knobs (serve --listen, and the query subcommand).
  bool listen_set = false;
  std::uint16_t listen_port = 0;  // 0 = ephemeral; actual port is printed
  std::size_t max_inflight = 64;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  bool binary_codec = true;
  std::string publisher = "noise_first";
  bool publisher_set = false;
  double epsilon = 0.1;
  // Sparse knobs: a nonzero --sparse-domain switches publish/serve to the
  // sparse representation (`key,count` CSVs over a 64-bit domain).
  std::uint64_t sparse_domain = 0;
  double expected_spurious = 1.0;
  bool expected_spurious_set = false;
  double delta = 1e-9;
  bool delta_set = false;
  std::uint64_t workload_seed = 1;
  std::string out_path;
  dphist::VOptStrategy vopt_strategy = dphist::VOptStrategy::kAuto;
  bool vopt_strategy_set = false;
  dphist::NoiseModel noise_model = dphist::NoiseModel::kAuto;
  bool noise_model_set = false;
};

// Parses trailing --n/--seed/--queries/--budget/--batches/--journal/
// --shards/--tenant/--vopt-strategy/--noise-model flags from argv[start..).
bool ParseFlags(int argc, char** argv, int start, Flags* flags) {
  for (int i = start; i < argc; ++i) {
    auto need_value = [&](const char* name) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", name);
        return nullptr;
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--n") == 0) {
      const char* value = need_value("--n");
      if (value == nullptr) return false;
      flags->n = static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      const char* value = need_value("--seed");
      if (value == nullptr) return false;
      flags->seed = std::strtoull(value, nullptr, 10);
    } else if (std::strcmp(argv[i], "--queries") == 0) {
      const char* value = need_value("--queries");
      if (value == nullptr) return false;
      flags->queries =
          static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
    } else if (std::strcmp(argv[i], "--budget") == 0) {
      const char* value = need_value("--budget");
      if (value == nullptr) return false;
      flags->budget = std::atof(value);
    } else if (std::strcmp(argv[i], "--batches") == 0) {
      const char* value = need_value("--batches");
      if (value == nullptr) return false;
      flags->batches =
          static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
    } else if (std::strcmp(argv[i], "--journal") == 0) {
      const char* value = need_value("--journal");
      if (value == nullptr) return false;
      flags->journal_dir = value;
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      const char* value = need_value("--shards");
      if (value == nullptr) return false;
      flags->shards =
          static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
    } else if (std::strcmp(argv[i], "--tenant") == 0) {
      const char* value = need_value("--tenant");
      if (value == nullptr) return false;
      flags->tenant = value;
    } else if (std::strcmp(argv[i], "--listen") == 0) {
      const char* value = need_value("--listen");
      if (value == nullptr) return false;
      flags->listen_set = true;
      flags->listen_port =
          static_cast<std::uint16_t>(std::strtoul(value, nullptr, 10));
    } else if (std::strcmp(argv[i], "--max-inflight") == 0) {
      const char* value = need_value("--max-inflight");
      if (value == nullptr) return false;
      flags->max_inflight =
          static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
    } else if (std::strcmp(argv[i], "--host") == 0) {
      const char* value = need_value("--host");
      if (value == nullptr) return false;
      flags->host = value;
    } else if (std::strcmp(argv[i], "--port") == 0) {
      const char* value = need_value("--port");
      if (value == nullptr) return false;
      flags->port =
          static_cast<std::uint16_t>(std::strtoul(value, nullptr, 10));
    } else if (std::strcmp(argv[i], "--codec") == 0) {
      const char* value = need_value("--codec");
      if (value == nullptr) return false;
      if (std::strcmp(value, "binary") == 0) {
        flags->binary_codec = true;
      } else if (std::strcmp(value, "json") == 0) {
        flags->binary_codec = false;
      } else {
        std::fprintf(stderr, "--codec must be binary or json (got: %s)\n",
                     value);
        return false;
      }
    } else if (std::strcmp(argv[i], "--publisher") == 0) {
      const char* value = need_value("--publisher");
      if (value == nullptr) return false;
      flags->publisher = value;
      flags->publisher_set = true;
    } else if (std::strcmp(argv[i], "--sparse-domain") == 0) {
      const char* value = need_value("--sparse-domain");
      if (value == nullptr) return false;
      // Exact unsigned parse: domains run to 2^63, far past what a double
      // round-trip preserves.
      const char* end = value + std::strlen(value);
      const auto [ptr, ec] = std::from_chars(value, end, flags->sparse_domain);
      if (ec != std::errc() || ptr != end || flags->sparse_domain == 0) {
        std::fprintf(stderr,
                     "--sparse-domain must be a positive 64-bit integer "
                     "(got: %s)\n",
                     value);
        return false;
      }
    } else if (std::strcmp(argv[i], "--expected-spurious") == 0) {
      const char* value = need_value("--expected-spurious");
      if (value == nullptr) return false;
      flags->expected_spurious = std::atof(value);
      flags->expected_spurious_set = true;
    } else if (std::strcmp(argv[i], "--delta") == 0) {
      const char* value = need_value("--delta");
      if (value == nullptr) return false;
      flags->delta = std::atof(value);
      flags->delta_set = true;
    } else if (std::strcmp(argv[i], "--epsilon") == 0) {
      const char* value = need_value("--epsilon");
      if (value == nullptr) return false;
      flags->epsilon = std::atof(value);
    } else if (std::strcmp(argv[i], "--workload-seed") == 0) {
      const char* value = need_value("--workload-seed");
      if (value == nullptr) return false;
      flags->workload_seed = std::strtoull(value, nullptr, 10);
    } else if (std::strcmp(argv[i], "--out") == 0) {
      const char* value = need_value("--out");
      if (value == nullptr) return false;
      flags->out_path = value;
    } else if (std::strcmp(argv[i], "--vopt-strategy") == 0) {
      const char* value = need_value("--vopt-strategy");
      if (value == nullptr) return false;
      if (!dphist::ParseVOptStrategy(value, &flags->vopt_strategy)) {
        std::fprintf(stderr,
                     "--vopt-strategy must be auto, naive, or monotone "
                     "(got: %s)\n",
                     value);
        return false;
      }
      flags->vopt_strategy_set = true;
    } else if (std::strcmp(argv[i], "--noise-model") == 0) {
      const char* value = need_value("--noise-model");
      if (value == nullptr) return false;
      if (!dphist::ParseNoiseModel(value, &flags->noise_model)) {
        std::fprintf(stderr,
                     "--noise-model must be auto, textbook, batched, "
                     "snapped, or discrete (got: %s)\n",
                     value);
        return false;
      }
      flags->noise_model_set = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return false;
    }
  }
  return true;
}

// Resolves an algorithm name the way the serving stack does: the literal
// name "env" defers to DPHIST_PUBLISHER (falling back to noise_first), so
// scripts can switch publishers without editing the command line.
std::string ResolveAlgorithm(const std::string& algorithm) {
  if (algorithm == "env") {
    return dphist::PublisherRegistry::NameFromEnv("noise_first");
  }
  return algorithm;
}

// Builds a sparse publisher honoring explicit --expected-spurious /
// --delta overrides (re-wrapped in the registry's obs decorator, matching
// the dense flag-override path).
dphist::Result<std::unique_ptr<dphist::sparse::SparseHistogramPublisher>>
MakeSparsePublisher(const std::string& name, const Flags& flags) {
  if (flags.expected_spurious_set && name == "sparse_pure") {
    dphist::sparse::SparsePurePublisher::Options options;
    options.expected_spurious = flags.expected_spurious;
    return dphist::PublisherRegistry::InstrumentSparse(
        std::make_unique<dphist::sparse::SparsePurePublisher>(options));
  }
  if (flags.delta_set && name == "unknown_domain") {
    dphist::sparse::UnknownDomainPublisher::Options options;
    options.delta = flags.delta;
    return dphist::PublisherRegistry::InstrumentSparse(
        std::make_unique<dphist::sparse::UnknownDomainPublisher>(options));
  }
  return dphist::PublisherRegistry::MakeSparse(name);
}

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  dphist_tool generate <age|nettrace|searchlogs|social> <out.csv>"
      " [--n N] [--seed S]\n"
      "  dphist_tool publish <algorithm> <epsilon> <in.csv> <out.csv>"
      " [--seed S] [--vopt-strategy auto|naive|monotone]\n"
      "           [--noise-model auto|textbook|batched|snapped|discrete]\n"
      "           [--sparse-domain D] [--expected-spurious S] [--delta D]\n"
      "  dphist_tool evaluate <truth.csv> <released.csv> [--queries Q]"
      " [--seed S]\n"
      "  dphist_tool serve <algorithm> <epsilon-per-release> <in.csv>"
      " [--budget E] [--batches B] [--queries Q] [--seed S]"
      " [--journal DIR] [--shards N] [--tenant NAME]"
      " [--listen PORT] [--max-inflight N] [--sparse-domain D]\n"
      "  dphist_tool query [--host H] [--port P] [--codec binary|json]"
      " [--publisher A] [--epsilon E] [--seed S] [--queries Q]"
      " [--workload-seed S] [--tenant NAME] [--out FILE]\n"
      "  dphist_tool list\n"
      "\n"
      "serve --listen PORT exposes the store over HTTP/1.1 on\n"
      "127.0.0.1:PORT (0 picks an ephemeral port; the bound port is\n"
      "printed) instead of running local batches, until SIGINT/SIGTERM.\n"
      "--max-inflight bounds the admission queue (excess requests are\n"
      "refused with a typed 503). query connects to such a server, asks a\n"
      "deterministic random-range workload (--queries, --workload-seed)\n"
      "in the chosen codec, and prints one answer per line with\n"
      "round-trip precision — two runs differing only in --codec must\n"
      "print byte-identical answers.\n"
      "\n"
      "--journal makes serving durable: charges and publications are\n"
      "written ahead to DIR/events.jnl and replayed on the next start, so\n"
      "a restart never re-spends epsilon that already bought a release\n"
      "(default: $DPHIST_JOURNAL_DIR; unset means in-memory). --shards\n"
      "sets the release-cache shard count (default: $DPHIST_SERVE_SHARDS).\n"
      "--tenant names the serving namespace.\n"
      "\n"
      "--vopt-strategy picks the v-opt DP row fill for noise_first /\n"
      "structure_first (a pure execution knob: every strategy publishes\n"
      "bit-identical histograms). The DPHIST_VOPT_STRATEGY environment\n"
      "variable applies the same override to every solve, including the\n"
      "serve subcommand's publishers.\n"
      "\n"
      "--sparse-domain D switches publish/serve to the sparse\n"
      "representation: the input CSV holds `key,count` lines (keys\n"
      "strictly increasing, < D, D up to 2^63) and <algorithm> names a\n"
      "sparse publisher (`dphist_tool list`): sparse_pure (pure eps-DP\n"
      "thresholded release; --expected-spurious tunes the spurious-key\n"
      "budget) or unknown_domain ((eps, delta)-DP stability threshold;\n"
      "--delta sets delta). The literal algorithm name `env` defers to\n"
      "$DPHIST_PUBLISHER (default noise_first); query's --publisher\n"
      "default resolves the same way.\n"
      "\n"
      "--noise-model picks the noise sampling construction for dwork /\n"
      "geometric / noise_first / structure_first (DESIGN §10): textbook\n"
      "(the historical scalar samplers, the default), batched (the SIMD\n"
      "batch kernel), snapped (Mironov-style snapped Laplace), or\n"
      "discrete (exact discrete Laplace). The DPHIST_NOISE_MODEL\n"
      "environment variable applies the same override to every\n"
      "mechanism-based publisher; an explicit flag wins.\n");
  return 2;
}

int RunGenerate(int argc, char** argv) {
  if (argc < 4) {
    return Usage();
  }
  Flags flags;
  if (!ParseFlags(argc, argv, 4, &flags)) {
    return 2;
  }
  const std::string kind = argv[2];
  dphist::Dataset dataset;
  if (kind == "age") {
    dataset = dphist::MakeAge(flags.seed);
  } else if (kind == "nettrace") {
    dataset = dphist::MakeNetTrace(flags.n, flags.seed);
  } else if (kind == "searchlogs") {
    dataset = dphist::MakeSearchLogs(flags.n, flags.seed);
  } else if (kind == "social") {
    dataset = dphist::MakeSocialNetwork(flags.n, flags.seed);
  } else {
    std::fprintf(stderr, "unknown dataset kind: %s\n", kind.c_str());
    return 2;
  }
  const dphist::Status status =
      dphist::SaveHistogramCsv(dataset.histogram, argv[3]);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%zu bins, %s)\n", argv[3], dataset.histogram.size(),
              dataset.description.c_str());
  return 0;
}

int RunPublish(int argc, char** argv) {
  if (argc < 6) {
    return Usage();
  }
  Flags flags;
  if (!ParseFlags(argc, argv, 6, &flags)) {
    return 2;
  }
  const double epsilon = std::atof(argv[3]);
  const std::string algorithm = ResolveAlgorithm(argv[2]);
  if (flags.sparse_domain > 0) {
    auto publisher = MakeSparsePublisher(algorithm, flags);
    if (!publisher.ok()) {
      std::fprintf(stderr, "%s\n", publisher.status().ToString().c_str());
      return 1;
    }
    auto truth =
        dphist::sparse::LoadSparseHistogramCsv(argv[4], flags.sparse_domain);
    if (!truth.ok()) {
      std::fprintf(stderr, "%s\n", truth.status().ToString().c_str());
      return 1;
    }
    dphist::Rng rng(flags.seed);
    dphist::sparse::SparsePublishStats stats;
    auto released =
        publisher.value()->Publish(truth.value(), epsilon, rng, &stats);
    if (!released.ok()) {
      std::fprintf(stderr, "%s\n", released.status().ToString().c_str());
      return 1;
    }
    const dphist::Status status =
        dphist::sparse::SaveSparseHistogramCsv(released.value(), argv[5]);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf(
        "published %s with %s at epsilon=%g over domain %llu -> %s "
        "(%llu released, %llu suppressed, %llu spurious, threshold=%.4f)\n",
        argv[4], publisher.value()->name().c_str(), epsilon,
        static_cast<unsigned long long>(flags.sparse_domain), argv[5],
        static_cast<unsigned long long>(stats.released_keys),
        static_cast<unsigned long long>(stats.suppressed_keys),
        static_cast<unsigned long long>(stats.spurious_keys),
        stats.threshold);
    return 0;
  }
  auto publisher = dphist::PublisherRegistry::Make(algorithm);
  if (!publisher.ok()) {
    std::fprintf(stderr, "%s\n", publisher.status().ToString().c_str());
    return 1;
  }
  // Explicit --vopt-strategy / --noise-model flags rebuild the publisher
  // with the knob in its Options (beating any DPHIST_VOPT_STRATEGY /
  // DPHIST_NOISE_MODEL in the environment), re-wrapped in the registry's
  // obs decorator so metrics stay uniform.
  if (flags.vopt_strategy_set || flags.noise_model_set) {
    if (algorithm == "noise_first") {
      dphist::NoiseFirst::Options options;
      options.vopt_strategy = flags.vopt_strategy;
      options.noise_model = flags.noise_model;
      publisher = dphist::PublisherRegistry::Instrument(
          std::make_unique<dphist::NoiseFirst>(options));
    } else if (algorithm == "structure_first") {
      dphist::StructureFirst::Options options;
      options.vopt_strategy = flags.vopt_strategy;
      options.noise_model = flags.noise_model;
      publisher = dphist::PublisherRegistry::Instrument(
          std::make_unique<dphist::StructureFirst>(options));
    } else if (algorithm == "dwork" && flags.noise_model_set) {
      dphist::IdentityLaplace::Options options;
      options.noise_model = flags.noise_model;
      publisher = dphist::PublisherRegistry::Instrument(
          std::make_unique<dphist::IdentityLaplace>(options));
    } else if (algorithm == "geometric" && flags.noise_model_set) {
      dphist::IdentityGeometric::Options options;
      options.noise_model = flags.noise_model;
      publisher = dphist::PublisherRegistry::Instrument(
          std::make_unique<dphist::IdentityGeometric>(options));
    } else {
      std::fprintf(stderr,
                   "note: --vopt-strategy affects only noise_first and "
                   "structure_first, --noise-model additionally dwork and "
                   "geometric; ignored for %s\n",
                   algorithm.c_str());
    }
  }
  auto truth = dphist::LoadHistogramCsv(argv[4]);
  if (!truth.ok()) {
    std::fprintf(stderr, "%s\n", truth.status().ToString().c_str());
    return 1;
  }
  dphist::Rng rng(flags.seed);
  auto released = publisher.value()->Publish(truth.value(), epsilon, rng);
  if (!released.ok()) {
    std::fprintf(stderr, "%s\n", released.status().ToString().c_str());
    return 1;
  }
  const dphist::Status status =
      dphist::SaveHistogramCsv(released.value(), argv[5]);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("published %s with %s at epsilon=%g -> %s\n", argv[4],
              publisher.value()->name().c_str(), epsilon, argv[5]);
  return 0;
}

int RunEvaluate(int argc, char** argv) {
  if (argc < 4) {
    return Usage();
  }
  Flags flags;
  if (!ParseFlags(argc, argv, 4, &flags)) {
    return 2;
  }
  auto truth = dphist::LoadHistogramCsv(argv[2]);
  auto released = dphist::LoadHistogramCsv(argv[3]);
  if (!truth.ok() || !released.ok()) {
    std::fprintf(stderr, "failed to load inputs\n");
    return 1;
  }
  dphist::Rng rng(flags.seed);
  auto queries = dphist::RandomRangeWorkload(truth.value().size(),
                                             flags.queries, rng);
  if (!queries.ok()) {
    std::fprintf(stderr, "%s\n", queries.status().ToString().c_str());
    return 1;
  }
  auto error = dphist::EvaluateWorkload(truth.value(), released.value(),
                                        queries.value());
  if (!error.ok()) {
    std::fprintf(stderr, "%s\n", error.status().ToString().c_str());
    return 1;
  }
  auto kl = dphist::KlDivergence(truth.value(), released.value());
  std::printf("random-range workload (%zu queries):\n", flags.queries);
  std::printf("  mae = %.4f\n  mse = %.4f\n  max = %.4f\n",
              error.value().mean_absolute, error.value().mean_squared,
              error.value().max_absolute);
  std::printf("  kl(true || released) = %.6f\n", kl.value_or(-1.0));
  return 0;
}

// Demonstrates the serving layer: load a CSV histogram, stand up a
// ReleaseServer with a lifetime budget, and drive `--batches` query
// batches at distinct seeds until the ledger refuses and batches degrade
// to stale cached releases. With --journal (or DPHIST_JOURNAL_DIR) the
// store is durable: this run replays whatever a previous run journaled,
// then appends its own charges and publications.
int RunServe(int argc, char** argv) {
  if (argc < 5) {
    return Usage();
  }
  Flags flags;
  if (!ParseFlags(argc, argv, 5, &flags)) {
    return 2;
  }
  const double epsilon = std::atof(argv[3]);
  const bool sparse = flags.sparse_domain > 0;
  dphist::Histogram dense_truth;
  std::optional<dphist::sparse::SparseHistogram> sparse_truth;
  std::size_t domain = 0;
  std::uint64_t fingerprint = 0;
  if (sparse) {
    auto loaded =
        dphist::sparse::LoadSparseHistogramCsv(argv[4], flags.sparse_domain);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    domain = static_cast<std::size_t>(loaded.value().domain_size());
    fingerprint = dphist::sparse::FingerprintSparseHistogram(loaded.value());
    sparse_truth = std::move(loaded).value();
  } else {
    auto loaded = dphist::LoadHistogramCsv(argv[4]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    domain = loaded.value().size();
    fingerprint = dphist::serve::FingerprintHistogram(loaded.value());
    dense_truth = std::move(loaded).value();
  }

  std::string journal_dir = flags.journal_dir;
  if (journal_dir.empty()) {
    journal_dir = dphist::serve::JournalDirFromEnv().value_or("");
  }
  std::unique_ptr<dphist::serve::Journal> journal;
  std::string journal_path;
  if (!journal_dir.empty()) {
    journal_path = journal_dir + "/events.jnl";
    auto opened = dphist::serve::Journal::Open(journal_path);
    if (!opened.ok()) {
      std::fprintf(stderr, "journal open failed: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    journal = std::move(opened).value();
  }

  dphist::serve::ReleaseServerOptions options;
  options.cache_shards = flags.shards;
  options.journal = journal.get();
  dphist::serve::ReleaseServer server(options);
  const dphist::serve::TenantKey ns{flags.tenant, "default"};
  const dphist::Status added =
      sparse ? server.AddSparseDataset(ns, std::move(*sparse_truth),
                                      flags.budget)
             : server.AddDataset(ns, std::move(dense_truth), flags.budget);
  if (!added.ok()) {
    std::fprintf(stderr, "%s\n", added.ToString().c_str());
    return 1;
  }
  if (journal != nullptr) {
    auto replay = dphist::serve::ReplayJournalFile(journal_path);
    if (!replay.ok()) {
      std::fprintf(stderr, "journal replay failed: %s\n",
                   replay.status().ToString().c_str());
      return 1;
    }
    auto recovered = server.Recover(replay.value());
    if (!recovered.ok()) {
      std::fprintf(stderr, "recovery failed: %s\n",
                   recovered.status().ToString().c_str());
      return 1;
    }
    std::printf("journal %s: %s\n", journal_path.c_str(),
                recovered.value().ToString().c_str());
  }
  std::printf("serving %s as %s (n=%zu, fingerprint=%016llx, %zu cache "
              "shard(s)) with budget epsilon=%g, %g per release\n",
              argv[4], dphist::serve::FormatTenantKey(ns).c_str(), domain,
              static_cast<unsigned long long>(fingerprint),
              server.cache().shard_count(), flags.budget, epsilon);

  if (flags.listen_set) {
    // Network mode: expose the store over HTTP until SIGINT/SIGTERM.
    // Workers come from ThreadPool::Global(), so DPHIST_THREADS sizes the
    // handler pool exactly like every other parallel stage. A long-running
    // server records its own metrics regardless of DPHIST_OBS_OUT — the
    // /statsz endpoint is useless over an empty snapshot.
    dphist::obs::Registry::Global().set_enabled(true);
    dphist::net::NetServerOptions net_options;
    net_options.port = flags.listen_port;
    net_options.max_inflight = flags.max_inflight;
    dphist::net::NetServer net_server(&server, net_options);
    const dphist::Status started = net_server.Start();
    if (!started.ok()) {
      std::fprintf(stderr, "%s\n", started.ToString().c_str());
      return 1;
    }
    std::printf("listening on %s (max_inflight=%zu)\n",
                net_server.address().c_str(), flags.max_inflight);
    std::fflush(stdout);
    g_stop_requested = 0;
    std::signal(SIGINT, HandleStopSignal);
    std::signal(SIGTERM, HandleStopSignal);
    while (g_stop_requested == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    net_server.Stop();
    auto ledger = server.LedgerFor(ns);
    if (ledger.ok()) {
      std::printf("stopped; cache: %zu release(s); ledger: spent %.4f of "
                  "%.4f (%zu charges)\n",
                  server.cache().size(), ledger.value()->spent_epsilon(),
                  ledger.value()->total_epsilon(),
                  ledger.value()->charge_count());
    }
    return 0;
  }

  dphist::Rng workload_rng(flags.seed);
  auto queries =
      dphist::RandomRangeWorkload(domain, flags.queries, workload_rng);
  if (!queries.ok()) {
    std::fprintf(stderr, "%s\n", queries.status().ToString().c_str());
    return 1;
  }
  std::size_t fresh = 0;
  std::size_t hits = 0;
  std::size_t stale = 0;
  for (std::size_t b = 0; b < flags.batches; ++b) {
    dphist::serve::ServeRequest request;
    request.publisher = ResolveAlgorithm(argv[2]);
    request.epsilon = epsilon;
    request.seed = flags.seed + b;
    auto batch = server.AnswerBatch(ns, queries.value(), request);
    if (!batch.ok()) {
      std::fprintf(stderr, "batch %zu failed: %s\n", b,
                   batch.status().ToString().c_str());
      return 1;
    }
    double total = 0.0;
    for (double answer : batch.value().answers) {
      total += answer;
    }
    const char* kind = batch.value().stale
                           ? "stale"
                           : (batch.value().cache_hit ? "hit" : "fresh");
    std::printf("  batch %zu: seed=%llu -> %s (served seed=%llu, "
                "mean answer=%.3f)\n",
                b, static_cast<unsigned long long>(request.seed), kind,
                static_cast<unsigned long long>(batch.value().served.seed),
                total / static_cast<double>(batch.value().answers.size()));
    if (batch.value().stale) {
      ++stale;
    } else if (batch.value().cache_hit) {
      ++hits;
    } else {
      ++fresh;
    }
  }
  std::printf("batches: %zu fresh, %zu cache hits, %zu stale\n", fresh, hits,
              stale);
  auto ledger = server.LedgerFor(ns);
  if (!ledger.ok()) {
    std::fprintf(stderr, "%s\n", ledger.status().ToString().c_str());
    return 1;
  }
  std::printf("cache: %zu release(s); ledger: spent %.4f of %.4f "
              "(%zu charges)\n",
              server.cache().size(), ledger.value()->spent_epsilon(),
              ledger.value()->total_epsilon(),
              ledger.value()->charge_count());
  return 0;
}

// Connects to a `serve --listen` server, asks a deterministic
// random-range workload, and prints one answer per line with round-trip
// precision. The answers are the wire bytes decoded — so diffing a
// --codec binary run against a --codec json run proves the two paths
// byte-identical (the CI loopback smoke does exactly that).
int RunQuery(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, 2, &flags)) {
    return 2;
  }
  if (flags.port == 0) {
    std::fprintf(stderr, "query requires --port\n");
    return 2;
  }
  dphist::net::NetClient client;
  const dphist::Status connected = client.Connect(flags.host, flags.port);
  if (!connected.ok()) {
    std::fprintf(stderr, "%s\n", connected.ToString().c_str());
    return 1;
  }

  // The workload needs the served domain size; /v1/meta reports it.
  dphist::net::HttpMessage meta_request;
  meta_request.method = "GET";
  meta_request.target = "/v1/meta";
  auto meta_response = client.RoundTrip(meta_request);
  if (!meta_response.ok()) {
    std::fprintf(stderr, "%s\n", meta_response.status().ToString().c_str());
    return 1;
  }
  auto meta = dphist::obs::ParseFlatJson(meta_response.value().body);
  if (!meta.ok()) {
    std::fprintf(stderr, "bad /v1/meta response: %s\n",
                 meta.status().ToString().c_str());
    return 1;
  }
  const auto domain_it = meta.value().find("domain_size");
  if (domain_it == meta.value().end() ||
      domain_it->second.kind != dphist::obs::JsonValue::Kind::kNumber ||
      domain_it->second.number_value < 1.0) {
    std::fprintf(stderr, "server reports no served dataset\n");
    return 1;
  }
  const std::size_t domain =
      static_cast<std::size_t>(domain_it->second.number_value);

  dphist::Rng workload_rng(flags.workload_seed);
  auto queries =
      dphist::RandomRangeWorkload(domain, flags.queries, workload_rng);
  if (!queries.ok()) {
    std::fprintf(stderr, "%s\n", queries.status().ToString().c_str());
    return 1;
  }

  dphist::net::WireQueryRequest query;
  query.tenant = flags.tenant;
  // An explicit --publisher wins; otherwise DPHIST_PUBLISHER may override
  // the default, matching the registry's env resolution.
  query.request.publisher =
      flags.publisher_set
          ? flags.publisher
          : dphist::PublisherRegistry::NameFromEnv(flags.publisher);
  query.request.epsilon = flags.epsilon;
  query.request.seed = flags.seed;
  query.queries = std::move(queries).value();
  auto answer = client.Query(query, flags.binary_codec);
  if (!answer.ok()) {
    std::fprintf(stderr, "%s\n", answer.status().ToString().c_str());
    return 1;
  }

  std::FILE* out = stdout;
  if (!flags.out_path.empty()) {
    out = std::fopen(flags.out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", flags.out_path.c_str());
      return 1;
    }
  }
  for (const double value : answer.value().answers) {
    std::fprintf(out, "%.17g\n", value);
  }
  if (out != stdout) {
    std::fclose(out);
  }
  std::fprintf(stderr,
               "%zu answers over %s codec (%s, served seed=%llu, domain "
               "n=%zu)\n",
               answer.value().answers.size(),
               flags.binary_codec ? "binary" : "json",
               answer.value().stale
                   ? "stale"
                   : (answer.value().cache_hit ? "cache hit" : "fresh"),
               static_cast<unsigned long long>(answer.value().served.seed),
               domain);
  return 0;
}

int RunList() {
  std::printf("available algorithms:\n");
  for (const std::string& name : dphist::PublisherRegistry::BuiltinNames()) {
    std::printf("  %s\n", name.c_str());
  }
  std::printf("sparse algorithms (require --sparse-domain):\n");
  for (const std::string& name : dphist::PublisherRegistry::SparseNames()) {
    std::printf("  %s\n", name.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  const std::string command = argv[1];
  int rc = 0;
  if (command == "generate") {
    rc = RunGenerate(argc, argv);
  } else if (command == "publish") {
    rc = RunPublish(argc, argv);
  } else if (command == "evaluate") {
    rc = RunEvaluate(argc, argv);
  } else if (command == "serve") {
    rc = RunServe(argc, argv);
  } else if (command == "query") {
    rc = RunQuery(argc, argv);
  } else if (command == "list") {
    rc = RunList();
  } else {
    rc = Usage();
  }
  // Flush obs metrics (no-op unless DPHIST_OBS_OUT is set), so `publish`
  // runs report draw counts and solver timings like the bench binaries do.
  dphist::obs::ExportToEnv("dphist_tool/" + command);
  return rc;
}
