// Scenario: pick the best publication algorithm for *your* histogram by
// running the full suite (Dwork, Boost, Privelet, NoiseFirst,
// StructureFirst) on your data and workload.
//
// Usage:
//   algorithm_comparison [histogram.csv] [epsilon]
// Without arguments it compares on the synthetic social-network degree
// distribution at epsilon = 0.1.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "dphist/algorithms/registry.h"
#include "dphist/bench_util/experiment.h"
#include "dphist/bench_util/table.h"
#include "dphist/data/csv.h"
#include "dphist/data/generators.h"
#include "dphist/query/workload.h"
#include "dphist/random/rng.h"

int main(int argc, char** argv) {
  dphist::Histogram truth;
  std::string source = "synthetic social-network degree distribution";
  if (argc > 1) {
    auto loaded = dphist::LoadHistogramCsv(argv[1]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", argv[1],
                   loaded.status().ToString().c_str());
      return 1;
    }
    truth = std::move(loaded).value();
    source = argv[1];
  } else {
    truth = dphist::MakeSocialNetwork(512, 3).histogram;
  }
  const double epsilon = argc > 2 ? std::atof(argv[2]) : 0.1;
  if (!(epsilon > 0.0)) {
    std::fprintf(stderr, "epsilon must be positive\n");
    return 1;
  }

  dphist::Rng workload_rng(5);
  auto queries =
      dphist::RandomRangeWorkload(truth.size(), 500, workload_rng);
  if (!queries.ok()) {
    std::fprintf(stderr, "workload failed\n");
    return 1;
  }

  std::printf("data: %s (n=%zu), epsilon=%g, 500 random range queries, "
              "20 repetitions\n\n",
              source.c_str(), truth.size(), epsilon);
  dphist::TablePrinter table(
      {"algorithm", "mae", "+/-", "kl", "publish ms"});
  for (const auto& publisher : dphist::PublisherRegistry::MakeAll()) {
    auto cell = dphist::RunCell(*publisher, truth, queries.value(), epsilon,
                                /*repetitions=*/20, /*seed=*/11);
    if (!cell.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", publisher->name().c_str(),
                   cell.status().ToString().c_str());
      return 1;
    }
    table.AddRow({publisher->name(),
                  dphist::TablePrinter::FormatDouble(
                      cell.value().workload_mae.mean, 4),
                  dphist::TablePrinter::FormatDouble(
                      cell.value().workload_mae.std_error, 2),
                  dphist::TablePrinter::FormatDouble(
                      cell.value().kl_divergence.mean, 3),
                  dphist::TablePrinter::FormatDouble(
                      cell.value().publish_ms.mean, 3)});
  }
  table.Print();
  return 0;
}
